"""Multi-GPU serving: device groups, expert placement, sharded KV pools."""

import pytest

from repro.analysis.expert_frequency import fig3_reference_frequencies
from repro.kernels.device import A100_40GB, DeviceSpec
from repro.runtime.backends import MiLoBackend, OutOfMemoryError, PyTorchFP16Backend
from repro.serving import (
    PLACEMENT_POLICIES,
    BalancedPlacement,
    BlockManager,
    ContinuousBatchingScheduler,
    DeviceGroup,
    EngineConfig,
    FrequencyPlacement,
    Request,
    SchedulerConfig,
    ServingEngine,
    ShardedBlockManager,
    expert_weight_fraction,
    make_allocation_policy,
    make_expert_placement,
    poisson_workload,
    split_tokens,
)
from repro.serving.kv_cache import KVCacheExhausted


def small_device(memory_gb: float) -> DeviceSpec:
    """An A100 clone with shrunk VRAM, to make per-device capacity bind."""
    from dataclasses import replace

    return replace(A100_40GB, name=f"A100-{memory_gb:g}GB", memory_gb=memory_gb)


class TestDeviceGroup:
    def test_replicate_names_and_len(self):
        group = DeviceGroup.replicate(A100_40GB, 3)
        assert len(group) == 3
        assert group.names == ("gpu0", "gpu1", "gpu2")
        assert group.total_memory_gb == pytest.approx(120.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceGroup(devices=())
        with pytest.raises(ValueError):
            DeviceGroup.replicate(A100_40GB, 0)


class TestFig3Frequencies:
    def test_normalized_with_exact_imbalance(self):
        freqs = fig3_reference_frequencies(8, imbalance_ratio=11.7)
        assert freqs.sum() == pytest.approx(1.0)
        assert freqs.max() / freqs.min() == pytest.approx(11.7)
        assert (freqs > 0).all()

    def test_single_expert_and_validation(self):
        assert fig3_reference_frequencies(1).tolist() == [1.0]
        with pytest.raises(ValueError):
            fig3_reference_frequencies(0)
        with pytest.raises(ValueError):
            fig3_reference_frequencies(8, imbalance_ratio=0.5)


class TestExpertPlacement:
    SKEW = tuple(fig3_reference_frequencies(8, imbalance_ratio=11.7))

    def test_balanced_round_robins_expert_ids(self):
        placement = BalancedPlacement(self.SKEW, 4)
        assert placement.assignment == (0, 1, 2, 3, 0, 1, 2, 3)
        assert [placement.experts_on(d) for d in range(4)] == [2, 2, 2, 2]

    def test_frequency_packs_mass_not_counts(self):
        balanced = BalancedPlacement(self.SKEW, 4)
        frequency = FrequencyPlacement(self.SKEW, 4)
        # Every expert placed on a real device; counts may be uneven (LPT
        # pairs hot experts with nothing and stacks cold ones) but the peak
        # device *mass* — the straggler — is strictly lower.
        assert len(frequency.assignment) == 8
        assert sum(frequency.experts_on(d) for d in range(4)) == 8
        assert max(frequency.device_mass) < max(balanced.device_mass)
        assert frequency.load_imbalance < balanced.load_imbalance
        # Mass is conserved either way.
        assert sum(frequency.device_mass) == pytest.approx(1.0)
        assert sum(balanced.device_mass) == pytest.approx(1.0)

    def test_uniform_frequencies_make_placement_moot(self):
        uniform = [1.0] * 8
        balanced = BalancedPlacement(uniform, 4)
        frequency = FrequencyPlacement(uniform, 4)
        assert max(balanced.device_mass) == pytest.approx(max(frequency.device_mass))
        assert balanced.load_imbalance == pytest.approx(1.0)

    def test_registry_and_factory(self):
        assert set(PLACEMENT_POLICIES) == {"balanced", "frequency"}
        placement = make_expert_placement("frequency", self.SKEW, 2)
        assert isinstance(placement, FrequencyPlacement)
        with pytest.raises(ValueError, match="unknown expert placement"):
            make_expert_placement("random", self.SKEW, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            BalancedPlacement((), 2)
        with pytest.raises(ValueError):
            BalancedPlacement((1.0, -0.5), 2)
        with pytest.raises(ValueError):
            BalancedPlacement((1.0,), 0)


class TestSplitTokens:
    def test_sums_to_total_and_is_deterministic(self):
        shares = (0.4, 0.35, 0.25)
        for total in (0, 1, 7, 100, 12345):
            loads = split_tokens(total, shares)
            assert sum(loads) == total
            assert loads == split_tokens(total, shares)

    def test_single_device_gets_everything_exactly(self):
        assert split_tokens(97, (1.0,)) == [97]

    def test_largest_remainder_breaks_ties_by_index(self):
        assert split_tokens(3, (0.5, 0.5)) == [2, 1]
        with pytest.raises(ValueError):
            split_tokens(-1, (1.0,))


def sharded(pool_sizes, block_size=8):
    return ShardedBlockManager(
        [BlockManager(num_blocks=n, block_size=block_size) for n in pool_sizes]
    )


class TestShardedBlockManager:
    def test_pools_must_agree_on_block_size(self):
        with pytest.raises(ValueError, match="block_size"):
            ShardedBlockManager(
                [BlockManager(num_blocks=4, block_size=8), BlockManager(num_blocks=4, block_size=16)]
            )
        with pytest.raises(ValueError):
            ShardedBlockManager([])

    def test_allocate_picks_least_loaded_device(self):
        manager = sharded([8, 8])
        manager.allocate(0, 8)   # tie -> gpu0
        assert manager.home_device(0) == 0
        manager.allocate(1, 8)   # gpu1 now has more free blocks
        assert manager.home_device(1) == 1
        manager.allocate(2, 30)  # 4 blocks; both have 7 free -> gpu0
        assert manager.home_device(2) == 0
        manager.allocate(3, 8)   # gpu1 (7 free) beats gpu0 (3 free)
        assert manager.home_device(3) == 1
        assert manager.used_blocks == 7
        manager.check_invariants()

    def test_free_returns_blocks_to_the_home_pool(self):
        manager = sharded([4, 4])
        manager.allocate(0, 16)  # 2 blocks on gpu0
        manager.allocate(1, 16)  # 2 blocks on gpu1
        assert [p.used_blocks for p in manager.pools] == [2, 2]
        assert manager.free(0) == 2
        assert [p.used_blocks for p in manager.pools] == [0, 2]
        with pytest.raises(KVCacheExhausted):
            manager.free(0)
        manager.free(1)
        manager.assert_no_leaks()

    def test_sequence_kv_never_spans_devices(self):
        """A request larger than every single pool is unadmittable even
        though the summed capacity would fit it: KV is pinned to one home."""
        manager = sharded([4, 4])
        assert not manager.fits_at_all(8 * 8)  # 8 blocks: fits the sum only
        assert manager.fits_at_all(4 * 8)
        assert not manager.can_allocate(8 * 8)
        with pytest.raises(KVCacheExhausted):
            manager.allocate(0, 8 * 8)
        manager.check_invariants()

    def test_max_sequences_sums_over_pools(self):
        manager = sharded([6, 4])
        assert manager.max_sequences(16) == 3 + 2  # 2 blocks per sequence

    def test_grow_charges_the_home_pool_only(self):
        manager = sharded([4, 4])
        manager.allocate(0, 8)
        manager.allocate(1, 8)
        manager.grow(0, 2)
        assert manager.pools[0].used_blocks == 3
        assert manager.pools[1].used_blocks == 1
        # gpu0 has 1 free block left; a 2-block growth must fail even though
        # gpu1 has 3 free.
        with pytest.raises(KVCacheExhausted):
            manager.grow(0, 2)
        assert manager.free_blocks_on(0) == 1 and manager.free_blocks_on(1) == 3
        manager.check_invariants()

    def test_prefix_sharers_colocate_with_their_prefix(self):
        manager = sharded([8, 8])
        # Registrar lands on gpu0 and registers the 2-block prefix there.
        fresh, hits = manager.allocate_shared(0, 24, prefix_id=7, prefix_tokens=16)
        assert (fresh, hits) == (3, 0)
        assert manager.home_device(0) == 0
        # The sharer prefers the device with resident prefix blocks even
        # though gpu1 is now strictly less loaded.
        fresh, hits = manager.allocate_shared(1, 24, prefix_id=7, prefix_tokens=16)
        assert manager.home_device(1) == 0
        assert fresh == 1 and hits == 16
        assert manager.pools[0].shared_blocks == 2
        assert manager.pools[1].used_blocks == 0
        manager.check_invariants()

    def test_full_prefix_hit_takes_no_fresh_blocks_even_on_a_full_home(self):
        manager = sharded([4, 4])
        manager.allocate_shared(0, 32, prefix_id=3, prefix_tokens=32)  # fills gpu0
        # All four blocks are resident prefix: the sharer maps them read-only
        # on the otherwise-full gpu0 instead of allocating on idle gpu1.
        fresh, hits = manager.allocate_shared(1, 32, prefix_id=3, prefix_tokens=32)
        assert manager.home_device(1) == 0
        assert fresh == 0 and hits == 32
        assert manager.pools[1].used_blocks == 0
        manager.check_invariants()

    def test_prefix_replicates_per_device_when_home_is_full(self):
        manager = sharded([4, 4])
        # 4 blocks on gpu0, the leading 3 registered as prefix; gpu0 is full.
        manager.allocate_shared(0, 32, prefix_id=3, prefix_tokens=24)
        assert manager.home_device(0) == 0 and manager.free_blocks_on(0) == 0
        # The sharer needs one private block beyond its 3 prefix hits; gpu0
        # has none, so it homes on gpu1 and registers a *fresh copy* of the
        # prefix there — resident per device, exactly once per hosting pool.
        fresh, hits = manager.allocate_shared(1, 32, prefix_id=3, prefix_tokens=24)
        assert manager.home_device(1) == 1
        assert fresh == 4 and hits == 0
        assert manager.pools[0].prefix_hits(3, 24) == 3
        assert manager.pools[1].prefix_hits(3, 24) == 3
        assert manager.prefix_hit_blocks == 0
        manager.check_invariants()

    def test_cross_device_invariant_catches_corrupt_home_map(self):
        manager = sharded([4, 4])
        manager.allocate(0, 8)
        manager._home[0] = 1  # corrupt: blocks live on gpu0
        with pytest.raises(KVCacheExhausted, match="home map"):
            manager.check_invariants()

    def test_single_pool_home_hooks(self):
        pool = BlockManager(num_blocks=4, block_size=8)
        pool.allocate(0, 8)
        assert pool.home_device(0) == 0
        assert pool.free_blocks_on(0) == pool.free_blocks == 3
        with pytest.raises(KVCacheExhausted):
            pool.free_blocks_on(1)
        assert pool.sequences() == (0,)


class TestPlacementAwarePreemption:
    def test_victim_shares_the_growers_home_device(self):
        """Preempting a sequence on another device frees nothing usable;
        the scheduler must pick its victim from the grower's home pool."""
        manager = sharded([4, 4])
        sched = ContinuousBatchingScheduler(
            manager,
            SchedulerConfig(max_batch_size=8),
            allocation=make_allocation_policy("ondemand", manager),
        )
        seqs = [
            sched.add_request(
                Request(request_id=i, arrival_time=0.0, prompt_tokens=8, max_new_tokens=24)
            )
            for i in range(4)
        ]
        sched.admit(now=0.0)
        # Least-loaded admission alternates homes: 0, 1, 0, 1 — both full.
        assert [s.home_device for s in seqs] == [0, 1, 0, 1]
        assert manager.free_blocks == 0
        # Decode until the block boundary: the growth deficit appears on both
        # devices in the same iteration (all four sequences are in lockstep).
        preempted = []
        for step in range(1, 12):
            preempted = sched.ensure_capacity()
            if preempted:
                break
            for seq in list(sched.running):
                seq.advance(now=float(step))
        # Each grower (seqs 0 and 1, highest precedence per device) preempts
        # the lower-precedence sequence homed on its *own* device.
        assert {s.request.request_id for s in preempted} == {2, 3}
        assert seqs[2].home_device == seqs[0].home_device == 0
        assert seqs[3].home_device == seqs[1].home_device == 1
        manager.check_invariants()
        assert sched.preemptions == 2


def cluster_config(**kwargs):
    defaults = dict(max_batch_size=100_000, kv_policy="ondemand", reserve_gb=17.0)
    defaults.update(kwargs)
    return EngineConfig(**defaults)


class TestClusterEngine:
    SKEW = tuple(fig3_reference_frequencies(8, imbalance_ratio=11.7))

    def test_single_device_report_has_no_cluster_section(self):
        report = ServingEngine(MiLoBackend(), "mixtral-8x7b", EngineConfig(devices=1)).run(
            poisson_workload(10, qps=20.0, seed=0)
        )
        assert report.cluster is None
        assert "cluster" not in report.to_dict()

    def test_multi_device_report_schema_and_accounting(self):
        engine = ServingEngine(
            MiLoBackend(), "mixtral-8x7b", cluster_config(devices=2, expert_frequencies=self.SKEW)
        )
        report = engine.run(poisson_workload(40, qps=30.0, seed=1, mean_new_tokens=96))
        assert report.completed == 40
        cluster = report.to_dict()["cluster"]
        assert cluster["devices"] == 2 and cluster["placement"] == "balanced"
        assert cluster["straggler_ratio"] >= 1.0
        assert cluster["alltoall_tokens"] > 0
        assert len(cluster["per_device"]) == 2
        for entry in cluster["per_device"]:
            assert set(entry) == {
                "device", "experts", "expert_load_share", "kv_blocks",
                "kv_peak_used_blocks", "kv_utilization_peak",
            }
            assert 0 <= entry["kv_utilization_peak"] <= 1.0
            assert entry["kv_peak_used_blocks"] > 0
        assert sum(e["experts"] for e in cluster["per_device"]) == 8
        # Finished requests name their home device in the per-request records.
        devices = {r["device"] for r in report.requests if r["state"] == "finished"}
        assert devices <= {"gpu0", "gpu1"} and devices
        engine.block_manager.assert_no_leaks()

    def test_multi_device_runs_are_deterministic(self):
        workload = poisson_workload(30, qps=40.0, seed=2, mean_new_tokens=64)
        config = cluster_config(devices=3, placement="frequency", expert_frequencies=self.SKEW)
        first = ServingEngine(MiLoBackend(), "mixtral-8x7b", config).run(workload).to_dict()
        second = ServingEngine(MiLoBackend(), "mixtral-8x7b", config).run(workload).to_dict()
        assert first == second

    def test_skewed_routing_makes_balanced_placement_straggle(self):
        workload = poisson_workload(60, qps=30.0, seed=0, mean_new_tokens=96, length_jitter=0.0)
        reports = {}
        for placement in ("balanced", "frequency"):
            config = cluster_config(
                devices=4, placement=placement, expert_frequencies=self.SKEW
            )
            reports[placement] = ServingEngine(MiLoBackend(), "mixtral-8x7b", config).run(workload)
        balanced = reports["balanced"].to_dict()["cluster"]
        frequency = reports["frequency"].to_dict()["cluster"]
        # Frequency-aware packing strictly flattens the straggler and that
        # shows up as strictly less simulated time for identical traffic.
        assert frequency["straggler_ratio"] < balanced["straggler_ratio"]
        assert reports["frequency"].sim_time_s < reports["balanced"].sim_time_s
        assert reports["frequency"].sustained_qps > reports["balanced"].sustained_qps

    def test_expert_sharding_lets_fp16_mixtral_fit_four_devices(self):
        """~90 GB FP16 Mixtral OOMs one A100-40GB (and two), but its routed
        experts are ~96% of the checkpoint, so four devices hosting 2 experts
        each fit with room for KV."""
        assert expert_weight_fraction(ServingEngine(
            MiLoBackend(), "mixtral-8x7b").spec) > 0.9
        with pytest.raises(OutOfMemoryError):
            ServingEngine(PyTorchFP16Backend(), "mixtral-8x7b", EngineConfig(devices=1))
        with pytest.raises(OutOfMemoryError) as exc_info:
            ServingEngine(PyTorchFP16Backend(), "mixtral-8x7b", EngineConfig(devices=2))
        assert exc_info.value.device == "gpu0"
        assert exc_info.value.required_gb > exc_info.value.available_gb == 40.0
        engine = ServingEngine(PyTorchFP16Backend(), "mixtral-8x7b", EngineConfig(devices=4))
        assert all(pool.num_blocks > 0 for pool in engine.block_manager.pools)

    def test_disagg_oom_names_the_actual_pool_device(self):
        """Each disaggregation pool spans the *whole* model on its own
        devices, so a 3:1 split makes the lone decode device host all eight
        experts.  The capacity check must size each device by its pool-local
        placement and name the overloaded device — regression for the sizing
        loop using the colocated placement (2 experts everywhere) and either
        passing or blaming gpu0."""
        with pytest.raises(OutOfMemoryError) as exc_info:
            ServingEngine(
                PyTorchFP16Backend(), "mixtral-8x7b",
                EngineConfig(devices=4, prefill_devices=3, decode_devices=1),
            )
        err = exc_info.value
        assert err.device == "gpu3"  # the decode device, not the first device
        assert err.required_gb > err.available_gb == 40.0
        # Mirror image: a 1:3 split overloads the lone *prefill* device.
        with pytest.raises(OutOfMemoryError) as exc_info:
            ServingEngine(
                PyTorchFP16Backend(), "mixtral-8x7b",
                EngineConfig(devices=4, prefill_devices=1, decode_devices=3),
            )
        assert exc_info.value.device == "gpu0"
        # Quantized, the same partitions fit; the all-expert decode device
        # simply keeps less VRAM for KV than its 3-expert prefill peers.
        engine = ServingEngine(
            MiLoBackend(), "mixtral-8x7b",
            EngineConfig(devices=4, prefill_devices=3, decode_devices=1),
        )
        pools = engine.block_manager.pools
        assert all(pool.num_blocks > 0 for pool in pools)
        assert pools[3].num_blocks < min(pool.num_blocks for pool in pools[:3])

    def test_admission_rechecks_capacity_per_device(self):
        """A device the placement loads with extra experts can OOM while the
        across-device average fits: the per-device check must catch it and
        name the overloaded device in the typed error."""
        # Under 11.7x skew the frequency placement puts 3 experts on gpu2/gpu3
        # (mass-balanced, count-unbalanced); balanced puts 2 everywhere.
        device = small_device(8.5)
        balanced = EngineConfig(devices=4, placement="balanced", expert_frequencies=self.SKEW)
        engine = ServingEngine(MiLoBackend(device=device), "mixtral-8x7b", balanced)
        assert [engine.placement.experts_on(d) for d in range(4)] == [2, 2, 2, 2]
        frequency = EngineConfig(devices=4, placement="frequency", expert_frequencies=self.SKEW)
        with pytest.raises(OutOfMemoryError) as exc_info:
            ServingEngine(MiLoBackend(device=device), "mixtral-8x7b", frequency)
        err = exc_info.value
        assert err.device == "gpu2"  # the first 3-expert device
        assert err.backend == "milo"
        assert err.required_gb > err.available_gb == pytest.approx(8.5)

    def test_numpy_frequencies_are_accepted_end_to_end(self):
        """fig3_reference_frequencies returns an ndarray; the placement
        factory and EngineConfig must take it as-is (regression: ndarray
        truthiness raised instead of validating)."""
        freqs = fig3_reference_frequencies(8, imbalance_ratio=11.7)
        placement = make_expert_placement("frequency", freqs, 4)
        assert sum(placement.device_mass) == pytest.approx(1.0)
        config = EngineConfig(devices=2, expert_frequencies=freqs)
        engine = ServingEngine(MiLoBackend(), "mixtral-8x7b", config)
        report = engine.run(poisson_workload(5, qps=20.0, seed=0))
        assert report.completed == 5

    def test_idle_devices_do_not_inflate_the_straggler_ratio(self):
        """With more devices than experts, expert-less devices are idle by
        construction; the straggler baseline averages over the devices that
        actually host expert mass (regression: mean over all devices made
        10 devices / 8 experts report ~1.25x 'skew' under uniform routing)."""
        config = cluster_config(devices=10, expert_frequencies=(1.0,) * 8)
        engine = ServingEngine(MiLoBackend(), "mixtral-8x7b", config)
        assert sum(1 for m in engine.placement.device_mass if m > 0) == 8
        report = engine.run(poisson_workload(30, qps=30.0, seed=0, mean_new_tokens=64))
        cluster = report.to_dict()["cluster"]
        assert 1.0 <= cluster["straggler_ratio"] < 1.2

    def test_expert_frequencies_must_match_the_spec(self):
        config = EngineConfig(devices=2, expert_frequencies=(0.5, 0.5))
        with pytest.raises(ValueError, match="8 experts"):
            ServingEngine(MiLoBackend(), "mixtral-8x7b", config)
        with pytest.raises(ValueError):
            EngineConfig(devices=0)
        with pytest.raises(ValueError):
            EngineConfig(placement="random")
        with pytest.raises(ValueError):
            EngineConfig(expert_frequencies=(1.0, -1.0))
        with pytest.raises(ValueError):
            EngineConfig(expert_frequencies=())
