"""Tests for the Poisson, replay and trace-file workload generators."""

import numpy as np
import pytest

from repro.serving import TraceSchemaError, load_trace, poisson_workload, replay_workload


class TestPoissonWorkload:
    def test_same_seed_same_workload(self):
        a = poisson_workload(50, qps=4.0, seed=9)
        b = poisson_workload(50, qps=4.0, seed=9)
        assert a == b  # Request is a frozen dataclass: exact field equality

    def test_different_seeds_differ(self):
        a = poisson_workload(50, qps=4.0, seed=1)
        b = poisson_workload(50, qps=4.0, seed=2)
        assert a != b

    def test_arrivals_sorted_and_start_at_zero(self):
        wl = poisson_workload(30, qps=10.0, seed=0)
        arrivals = [r.arrival_time for r in wl]
        assert arrivals[0] == 0.0
        assert arrivals == sorted(arrivals)

    def test_mean_interarrival_matches_qps(self):
        wl = poisson_workload(3000, qps=5.0, seed=0)
        arrivals = np.array([r.arrival_time for r in wl])
        mean_gap = np.diff(arrivals).mean()
        assert mean_gap == pytest.approx(1 / 5.0, rel=0.1)

    def test_first_arrival_rebased_not_discarded(self):
        """Regression for the first-arrival bias: re-basing must shift the
        cumulative sum by the first draw, not zero it out — otherwise the
        gap between requests 0 and 1 is the sum of two exponential draws
        and achieved QPS undershoots the target."""
        qps, n, seed = 5.0, 200, 12
        rng = np.random.default_rng(seed)
        draws = rng.exponential(1.0 / qps, size=n)
        expected = np.cumsum(draws) - draws[0]
        arrivals = np.array([r.arrival_time for r in poisson_workload(n, qps=qps, seed=seed)])
        assert arrivals == pytest.approx(expected)
        # In particular the first gap is exactly the second draw, not d1+d2.
        assert arrivals[1] - arrivals[0] == pytest.approx(draws[1])

    def test_mean_interarrival_unbiased_across_seeds(self):
        """The n-1 gaps of an n-request workload average 1/qps without the
        systematic one-extra-draw inflation the old generator had."""
        gaps = []
        for seed in range(20):
            arrivals = np.array(
                [r.arrival_time for r in poisson_workload(500, qps=8.0, seed=seed)]
            )
            gaps.append(np.diff(arrivals).mean())
        assert np.mean(gaps) == pytest.approx(1 / 8.0, rel=0.02)

    def test_zero_jitter_gives_constant_lengths(self):
        wl = poisson_workload(20, qps=1.0, seed=0, mean_prompt_tokens=64,
                              mean_new_tokens=16, length_jitter=0.0)
        assert {r.prompt_tokens for r in wl} == {64}
        assert {r.max_new_tokens for r in wl} == {16}

    def test_jittered_lengths_stay_positive_and_near_mean(self):
        wl = poisson_workload(500, qps=1.0, seed=0, mean_prompt_tokens=32,
                              mean_new_tokens=8, length_jitter=0.5)
        prompts = np.array([r.prompt_tokens for r in wl])
        assert prompts.min() >= 1
        assert prompts.mean() == pytest.approx(32, rel=0.2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_requests": 0, "qps": 1.0},
            {"num_requests": 5, "qps": 0.0},
            {"num_requests": 5, "qps": 1.0, "length_jitter": -0.1},
            {"num_requests": 5, "qps": 1.0, "mean_prompt_tokens": 0},
            {"num_requests": 5, "qps": 1.0, "mean_new_tokens": -4},
            {"num_requests": 5, "qps": 1.0, "shared_prefix_tokens": -1},
            {"num_requests": 5, "qps": 1.0, "prefix_groups": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            poisson_workload(**kwargs)


class TestSharedPrefixWorkload:
    def test_prefix_fields_and_prompt_extension(self):
        wl = poisson_workload(
            40, qps=4.0, seed=0, mean_prompt_tokens=32,
            shared_prefix_tokens=128, prefix_groups=3,
        )
        assert all(r.prefix_tokens == 128 for r in wl)
        assert all(r.prompt_tokens > 128 for r in wl)
        groups = {r.prefix_id for r in wl}
        assert groups <= {0, 1, 2} and len(groups) > 1

    def test_base_streams_unchanged_by_prefix_params(self):
        """Group assignment draws after the legacy streams, so arrivals and
        lengths match the same-seed workload without sharing exactly."""
        plain = poisson_workload(30, qps=4.0, seed=5, mean_prompt_tokens=32)
        shared = poisson_workload(
            30, qps=4.0, seed=5, mean_prompt_tokens=32,
            shared_prefix_tokens=64, prefix_groups=4,
        )
        for p, s in zip(plain, shared):
            assert s.arrival_time == p.arrival_time
            assert s.max_new_tokens == p.max_new_tokens
            assert s.prompt_tokens == p.prompt_tokens + 64

    def test_zero_prefix_is_bit_identical_to_legacy(self):
        plain = poisson_workload(20, qps=4.0, seed=9)
        explicit = poisson_workload(20, qps=4.0, seed=9, shared_prefix_tokens=0,
                                    prefix_groups=7)
        assert plain == explicit
        assert all(r.prefix_id is None for r in plain)


class TestReplayWorkload:
    def test_builds_requests_in_arrival_order(self):
        wl = replay_workload([(2.0, 8, 4), (0.0, 16, 2), (1.0, 4, 1)])
        assert [r.arrival_time for r in wl] == [0.0, 1.0, 2.0]
        # request_id reflects trace position, not arrival order.
        assert [r.request_id for r in wl] == [1, 2, 0]

    def test_field_conversion(self):
        (req,) = replay_workload([(0.5, 8.0, 4.0)])
        assert req.prompt_tokens == 8 and isinstance(req.prompt_tokens, int)
        assert req.max_new_tokens == 4
        assert req.arrival_time == 0.5

    def test_invalid_rows_rejected(self):
        with pytest.raises(ValueError):
            replay_workload([(0.0, 0, 4)])

    def test_optional_priority_column(self):
        wl = replay_workload([(0.0, 8, 4, 2), (1.0, 8, 4)], priority=7)
        assert wl[0].priority == 2   # per-row value wins
        assert wl[1].priority == 7   # default applies to 3-element rows

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="3 to 6 elements"):
            replay_workload([(0.0, 8)])
        with pytest.raises(ValueError, match="3 to 6 elements"):
            replay_workload([(0.0, 8, 4, 0, 1, 8, 99)])

    def test_optional_prefix_columns(self):
        wl = replay_workload([
            (0.0, 16, 4, 0, 3, 8),   # explicit prefix_tokens
            (1.0, 16, 4, 0, 3),      # defaults to the whole prompt
            (2.0, 16, 4, 0, None),   # sharing disabled for the row
            (3.0, 16, 4),            # legacy row
        ])
        assert (wl[0].prefix_id, wl[0].prefix_tokens) == (3, 8)
        assert (wl[1].prefix_id, wl[1].prefix_tokens) == (3, 16)
        assert (wl[2].prefix_id, wl[2].prefix_tokens) == (None, 0)
        assert (wl[3].prefix_id, wl[3].prefix_tokens) == (None, 0)

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            replay_workload([(0.0, 16, 4, 0, 1, 32)])  # prefix > prompt


class TestLoadTrace:
    GOOD = (
        '{"arrival": 1.0, "prompt": 8, "max_new_tokens": 4}\n'
        '\n'
        '{"arrival": 0.0, "prompt": 16, "max_new_tokens": 2, "priority": 3}\n'
    )

    def test_loads_jsonl_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(self.GOOD)
        wl = load_trace(path)
        assert [r.arrival_time for r in wl] == [0.0, 1.0]
        assert wl[0].priority == 3 and wl[1].priority == 0
        assert wl[0].prompt_tokens == 16

    def test_accepts_line_iterables(self):
        wl = load_trace(self.GOOD.splitlines())
        assert len(wl) == 2

    @pytest.mark.parametrize(
        "line, match",
        [
            ("not json", "invalid JSON"),
            ("[1, 2, 3]", "expected a JSON object"),
            ('{"prompt": 8, "max_new_tokens": 4}', "missing fields"),
            ('{"arrival": 0, "prompt": 8, "max_new_tokens": 4, "x": 1}', "unknown fields"),
            ('{"arrival": 0, "prompt": "8", "max_new_tokens": 4}', "must be int"),
            ('{"arrival": 0, "prompt": 8, "max_new_tokens": true}', "must be int"),
        ],
    )
    def test_schema_violations_name_the_line(self, line, match):
        with pytest.raises(TraceSchemaError, match=match):
            load_trace([self.GOOD.splitlines()[0], line])
        with pytest.raises(TraceSchemaError, match="line 2"):
            load_trace([self.GOOD.splitlines()[0], line])

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceSchemaError, match="no records"):
            load_trace(["", "   "])

    def test_out_of_range_values_name_the_line(self):
        good = '{"arrival": 0, "prompt": 8, "max_new_tokens": 4}'
        with pytest.raises(TraceSchemaError, match="line 2: 'prompt' must be positive"):
            load_trace([good, '{"arrival": 0, "prompt": 0, "max_new_tokens": 4}'])
        with pytest.raises(TraceSchemaError, match="line 1: 'arrival' must be non-negative"):
            load_trace(['{"arrival": -1, "prompt": 8, "max_new_tokens": 4}'])

    def test_prefix_fields_load(self):
        wl = load_trace([
            '{"arrival": 0, "prompt": 16, "max_new_tokens": 4, "prefix_id": 2, "prefix_tokens": 8}',
            '{"arrival": 1, "prompt": 16, "max_new_tokens": 4, "prefix_id": 2}',
            '{"arrival": 2, "prompt": 16, "max_new_tokens": 4}',
        ])
        assert (wl[0].prefix_id, wl[0].prefix_tokens) == (2, 8)
        assert (wl[1].prefix_id, wl[1].prefix_tokens) == (2, 16)  # whole prompt
        assert (wl[2].prefix_id, wl[2].prefix_tokens) == (None, 0)

    @pytest.mark.parametrize(
        "line, match",
        [
            (
                '{"arrival": 0, "prompt": 8, "max_new_tokens": 4, "prefix_tokens": 4}',
                "requires a 'prefix_id'",
            ),
            (
                '{"arrival": 0, "prompt": 8, "max_new_tokens": 4, "prefix_id": -1}',
                "'prefix_id' must be non-negative",
            ),
            (
                '{"arrival": 0, "prompt": 8, "max_new_tokens": 4, "prefix_id": 0, "prefix_tokens": 9}',
                r"'prefix_tokens' must lie in \[1, prompt\]",
            ),
            (
                '{"arrival": 0, "prompt": 8, "max_new_tokens": 4, "prefix_id": 0, "prefix_tokens": 0}',
                r"'prefix_tokens' must lie in \[1, prompt\]",
            ),
            (
                '{"arrival": 0, "prompt": 8, "max_new_tokens": 4, "prefix_id": "a"}',
                "must be int",
            ),
        ],
    )
    def test_invalid_prefix_fields_name_the_line(self, line, match):
        with pytest.raises(TraceSchemaError, match=match):
            load_trace([line])
