"""Regression tests for the hot-loop accounting sweep (PR 6).

Three bugs hid in ``ServingEngine.run`` / its report:

* requests still in ``scheduler.waiting`` at run exit silently vanished from
  the report (``num_requests`` undercounted the submitted work);
* ``straggler_ratio`` divided by the placement-mass device count, so a
  low-mass device that ``split_tokens`` handed zero tokens deflated the mean
  compute and inflated the ratio;
* the ``sustained_qps`` window opened at the first *finished* arrival, so
  rejecting early arrivals shrank the makespan and overstated QPS.

Each test here fails on the pre-PR engine.
"""

import pytest

from repro.runtime.backends import MiLoBackend
from repro.serving import (
    ContinuousBatchingScheduler,
    EngineConfig,
    Request,
    RequestState,
    SchedulingPolicy,
    ServingEngine,
    replay_workload,
)


def make_engine(**kwargs):
    return ServingEngine(MiLoBackend(), "mixtral-8x7b", EngineConfig(**kwargs))


# -- stranded requests -------------------------------------------------------------


class AdmitNothingPolicy(SchedulingPolicy):
    """A (pathologically) conservative policy: no sequence ever joins."""

    name = "admit-nothing"

    def may_join(self, running, config):
        return False


class AdmitNothingEngine(ServingEngine):
    """Engine whose scheduler runs the admit-nothing policy."""

    def make_scheduler(self):
        scheduler = super().make_scheduler()
        scheduler.policy = AdmitNothingPolicy()
        return scheduler


def make_admit_nothing_engine():
    return AdmitNothingEngine(MiLoBackend(), "mixtral-8x7b", EngineConfig())


class TestStrandedAccounting:
    def test_stranded_requests_surface_in_report(self):
        """Never-admitted requests must not vanish from the report."""
        engine = make_admit_nothing_engine()
        workload = replay_workload([(0.0, 8, 4), (0.5, 8, 4), (1.0, 8, 4)])
        report = engine.run(workload)
        # Pre-PR: the three requests disappear (num_requests == 0).
        assert report.num_requests == 3
        assert report.stranded == 3
        assert report.completed == 0 and report.rejected == 0
        assert report.completed + report.rejected + report.stranded == 3

    def test_stranded_records_and_schema_key(self):
        engine = make_admit_nothing_engine()
        report = engine.run(replay_workload([(0.0, 8, 4)]))
        d = report.to_dict()
        assert d["stranded"] == 1
        (record,) = d["requests"]
        assert record["state"] == "stranded"
        assert record["new_tokens"] == 0
        assert record["ttft_s"] is None and record["e2e_s"] is None

    def test_stranded_key_absent_when_nothing_strands(self):
        """In-tree policies never strand; historical reports stay byte-identical."""
        report = make_engine().run(replay_workload([(0.0, 8, 4)]))
        assert report.stranded == 0
        assert "stranded" not in report.to_dict()

    def test_scheduler_drain_stranded_transitions(self):
        engine = make_admit_nothing_engine()
        scheduler = engine.make_scheduler()
        seq = scheduler.add_request(
            Request(request_id=0, arrival_time=0.0, prompt_tokens=8, max_new_tokens=4)
        )
        scheduler.drain_stranded()
        assert seq.state is RequestState.STRANDED
        assert not scheduler.waiting
        with pytest.raises(RuntimeError):
            seq.strand()  # already terminal


# -- straggler_ratio denominator ---------------------------------------------------


class TestStragglerDenominator:
    def test_unloaded_device_does_not_inflate_ratio(self):
        """One token on 4 devices: 3 devices get zero load; ratio must be 1.0.

        Pre-PR the mean divides the single loaded device's compute by all 4
        mass-holding devices, reporting a phantom straggler_ratio of 4.0.
        """
        engine = make_engine(devices=4)
        report = engine.run(replay_workload([(0.0, 1, 1)]))
        assert report.cluster is not None
        assert report.cluster["straggler_ratio"] == pytest.approx(1.0)

    def test_ratio_at_least_one_under_mixed_load(self):
        """Per-iteration mean keeps max >= mean even when the loaded-device
        count varies between prefill (all loaded) and small decode batches
        (some devices at zero tokens)."""
        engine = make_engine(devices=4)
        report = engine.run(replay_workload([(0.0, 64, 32), (0.0, 64, 32)]))
        assert report.cluster is not None
        assert report.cluster["straggler_ratio"] >= 1.0


# -- sustained_qps window ----------------------------------------------------------


class TestSustainedQpsWindow:
    def test_window_opens_at_first_submitted_arrival(self):
        """A rejected early arrival must not shrink the QPS makespan.

        Request 0 (t=0) can never fit the pool and is rejected; request 1
        arrives much later and completes.  Pre-PR the window opened at
        request 1's arrival, overstating QPS by orders of magnitude.
        """
        engine = make_engine(admission="reject")
        never_fits = engine.block_manager.num_blocks * engine.config.block_size + 1
        requests = [
            Request(request_id=0, arrival_time=0.0, prompt_tokens=never_fits,
                    max_new_tokens=1),
            Request(request_id=1, arrival_time=100.0, prompt_tokens=8,
                    max_new_tokens=4),
        ]
        report = engine.run(requests)
        assert report.completed == 1 and report.rejected == 1
        last_finish = max(
            r["arrival_s"] + r["e2e_s"]
            for r in report.to_dict()["requests"]
            if r["state"] == "finished"
        )
        expected = 1 / (last_finish - 0.0)
        assert report.sustained_qps == pytest.approx(expected)
        # The buggy window (opening at t=100) is ~100x larger.
        assert report.sustained_qps < 2 * expected

    def test_all_finished_window_unchanged(self):
        """With no rejections the window already opened at the first arrival."""
        engine = make_engine()
        report = engine.run(replay_workload([(0.0, 8, 4), (0.2, 8, 4)]))
        d = report.to_dict()
        last_finish = max(r["arrival_s"] + r["e2e_s"] for r in d["requests"])
        assert report.sustained_qps == pytest.approx(2 / last_finish)
