"""Randomized op-sequence property tests for elastic KV migration.

PR 10 adds three ways KV blocks move *between* pools mid-run: the
prefill→decode handoff of disaggregated serving, load-triggered decode-pool
rebalance migrations, and swap-to-host preemption with swap-in on resume.
Example-based tests cannot cover the interleavings, so this tier drives

* the :class:`ShardedBlockManager` through thousands of seeded random
  ``allocate`` / ``grow`` / ``migrate`` / ``free`` steps — including
  migrations that *must* fail (destination too full) and must leave the
  manager untouched — calling ``check_invariants()`` plus the cross-device
  partition checks after every operation, and
* whole disaggregated engines (both preempt modes) through seeded random
  workloads under shrunken pools, checking request conservation, counter
  reconciliation (manager migration counters vs the report's migration
  section vs ``analyze_trace``) and replay determinism.

CI runs the fixed fast-tier seeds on every push (``-m "not slow"``); the
weekly benchmark-smoke workflow runs the longer randomized sweep
(``-m slow``).  Every failure message includes the seed, so a red run is
replayable bit-for-bit.
"""

import numpy as np
import pytest

from repro.runtime.backends import MiLoBackend
from repro.serving import (
    BlockManager,
    EngineConfig,
    RequestState,
    ServingEngine,
    ShardedBlockManager,
    Tracer,
    analyze_trace,
    poisson_workload,
)
from repro.serving.kv_cache import KVCacheExhausted
from repro.serving.request import Request, Sequence

BLOCK_SIZE = 4

#: Sharded layouts under test (migration needs at least two pools).
LAYOUTS = {
    "sharded2": (24, 24),
    "sharded4": (12, 12, 12, 12),
    "uneven3": (8, 22, 18),
}


def build_manager(layout):
    sizes = LAYOUTS[layout]
    return ShardedBlockManager(
        [BlockManager(num_blocks=n, block_size=BLOCK_SIZE) for n in sizes]
    )


def assert_cross_device_invariants(manager, live):
    """Partition checks: every live table lives in exactly its home pool."""
    manager.check_invariants()
    sizes = [pool.num_blocks for pool in manager.pools]
    for seq_id in live:
        home = manager.home_device(seq_id)
        assert 0 <= home < len(sizes)
        table = manager.block_table(seq_id)
        assert table, f"live sequence {seq_id} holds no blocks"
        assert all(0 <= block_id < sizes[home] for block_id in table)
        assert manager.pools[home].block_table(seq_id) == table
        for d, pool in enumerate(manager.pools):
            if d != home:
                assert pool.blocks_held(seq_id) == 0


def drive_migration_ops(layout, seed, steps):
    """One randomized episode; returns the number of migrations applied."""
    rng = np.random.default_rng(seed)
    manager = build_manager(layout)
    num_devices = len(manager.pools)
    live: dict[int, int] = {}  # seq_id -> tokens covered by its table
    next_id = 0
    migrations = 0
    note = f"layout={layout} seed={seed}"

    for step in range(steps):
        op = rng.choice(["alloc", "grow", "migrate", "free"])
        try:
            if op == "alloc":
                tokens = int(rng.integers(1, 40))
                if manager.can_allocate(tokens):
                    manager.allocate(next_id, tokens)
                    live[next_id] = tokens
                    next_id += 1
                else:
                    with pytest.raises(KVCacheExhausted):
                        manager.allocate(next_id, tokens)
            elif op == "grow" and live:
                seq_id = int(rng.choice(sorted(live)))
                blocks = int(rng.integers(1, 3))
                if blocks <= manager.free_blocks_on(manager.home_device(seq_id)):
                    manager.grow(seq_id, blocks)
                    live[seq_id] += blocks * BLOCK_SIZE
                else:
                    with pytest.raises(KVCacheExhausted):
                        manager.grow(seq_id, blocks)
            elif op == "migrate" and live:
                seq_id = int(rng.choice(sorted(live)))
                src = manager.home_device(seq_id)
                dst = int(rng.integers(0, num_devices))
                held = manager.blocks_held(seq_id)
                before = manager.migrations
                if dst == src:
                    # Degenerate self-migration: a counted no-op is a bug.
                    assert manager.migrate(seq_id, src, dst) == held
                    assert manager.migrations == before
                    assert manager.home_device(seq_id) == src
                elif held <= manager.free_blocks_on(dst):
                    moved = manager.migrate(seq_id, src, dst)
                    assert moved == held
                    assert manager.home_device(seq_id) == dst
                    assert manager.blocks_held(seq_id) == held
                    assert manager.pools[src].blocks_held(seq_id) == 0
                    assert manager.migrations == before + 1
                    migrations += 1
                else:
                    # The destination cannot fit: the migration must fail
                    # atomically, leaving the source table untouched.
                    table_before = list(manager.block_table(seq_id))
                    with pytest.raises(KVCacheExhausted):
                        manager.migrate(seq_id, src, dst)
                    assert manager.home_device(seq_id) == src
                    assert list(manager.block_table(seq_id)) == table_before
                    assert manager.migrations == before
                # Migrating a sequence no pool knows must always fail.
                with pytest.raises(KVCacheExhausted):
                    manager.migrate(next_id + 1_000_000, src, dst)
            elif op == "free" and live:
                seq_id = int(rng.choice(sorted(live)))
                manager.free(seq_id)
                del live[seq_id]
        except AssertionError:
            raise
        except Exception as exc:  # pragma: no cover - diagnostic wrapper
            raise AssertionError(f"{note} step={step} op={op}: {exc!r}") from exc
        assert_cross_device_invariants(manager, live)

    for seq_id in sorted(live):
        manager.free(seq_id)
    manager.assert_no_leaks()
    return migrations


class TestRandomMigrationSequences:
    """Seeded fast-tier episodes (run in CI on every push)."""

    @pytest.mark.parametrize("layout", sorted(LAYOUTS))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_invariants_hold_after_every_op(self, layout, seed):
        migrations = drive_migration_ops(layout, seed=seed, steps=1200)
        # The episode must actually move KV around, not no-op out.
        assert migrations > 50


@pytest.mark.slow
class TestRandomMigrationSequencesLong:
    """The long randomized sweep (weekly benchmark-smoke workflow)."""

    @pytest.mark.parametrize("layout", sorted(LAYOUTS))
    @pytest.mark.parametrize("seed", range(2, 12))
    def test_long_episodes(self, layout, seed):
        drive_migration_ops(layout, seed=seed, steps=5000)


class TestSwapStateMachine:
    """Sequence-level swap_out/swap_in lifecycle properties."""

    def _running_sequence(self, generated=3):
        seq = Sequence(Request(0, arrival_time=0.0, prompt_tokens=16, max_new_tokens=8))
        seq.admit(0.0)
        seq.advance(0.1)  # completes prefill, emits token 1
        for i in range(generated - 1):
            seq.advance(0.2 + i * 0.1)
        return seq

    def test_swap_out_preserves_prefill_state(self):
        seq = self._running_sequence()
        written = seq.kv_tokens_written()
        swapped = seq.swap_out()
        assert swapped == written
        assert seq.swapped_tokens == written
        assert seq.state is RequestState.PREEMPTED
        assert seq.prefill_done  # unlike preempt(), nothing is discarded
        assert seq.generated_tokens == 3
        assert seq.preemptions == 1

    def test_swap_out_requires_running(self):
        seq = Sequence(Request(0, arrival_time=0.0, prompt_tokens=16, max_new_tokens=8))
        with pytest.raises(RuntimeError):
            seq.swap_out()
        running = self._running_sequence()
        running.swap_out()
        with pytest.raises(RuntimeError):
            running.swap_out()  # already parked

    def test_recompute_preempt_discards_what_swap_keeps(self):
        swapped = self._running_sequence()
        recomputed = self._running_sequence()
        swapped.swap_out()
        recomputed.preempt()
        assert swapped.prefill_done and not recomputed.prefill_done
        assert swapped.swapped_tokens > 0
        assert recomputed.swapped_tokens == 0


def _run_disagg(seed, preempt_mode, num_blocks=36, with_tracer=False):
    engine = ServingEngine(
        MiLoBackend(),
        "mixtral-8x7b",
        EngineConfig(
            block_size=8, kv_policy="ondemand", max_batch_size=1000,
            devices=3, prefill_devices=1, decode_devices=2,
            preempt_mode=preempt_mode,
        ),
    )
    for pool in engine.block_manager.pools:
        pool.num_blocks = num_blocks
    tracer = None
    if with_tracer:
        tracer = Tracer()
        engine.enable_telemetry(tracer)
    workload = poisson_workload(
        25, qps=70.0, seed=seed, mean_prompt_tokens=48, mean_new_tokens=96,
    )
    report = engine.run(workload)
    return engine, report, tracer


class TestRandomDisaggRuns:
    """End-to-end randomized properties of the disaggregated engine."""

    @pytest.mark.parametrize("preempt_mode", ["recompute", "swap"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_conservation_and_counter_reconciliation(self, seed, preempt_mode):
        engine, report, tracer = _run_disagg(seed, preempt_mode, with_tracer=True)
        out = report.to_dict()
        # Conservation: every request lands in exactly one terminal state.
        assert report.completed + report.rejected + report.stranded == 25
        assert report.completed >= 20
        migration = out["migration"]
        # The manager's own migration counters must equal the report's
        # handoff + rebalance accounting — nothing moves off the books.
        assert engine.block_manager.migrations == (
            migration["handoffs"] + migration["rebalances"]
        )
        assert engine.block_manager.migrated_blocks == (
            migration["handoff_blocks"] + migration["rebalanced_blocks"]
        )
        assert migration["handoffs"] > 0  # the regime was actually disagg
        if preempt_mode == "swap":
            assert migration["swaps"] == report.preemptions
            # Every swap eventually swapped back in (all requests completed
            # or were rejected; none stranded holding host-parked KV).
            assert migration["swap_in_s"] > 0 or migration["swaps"] == 0
            assert migration["recompute_equivalent_s"] >= 0.0
        else:
            assert migration["swaps"] == 0
            assert migration["swap_in_s"] == 0.0
        # Trace reconciliation: analyze sums the exact stall floats.
        summary = analyze_trace(tracer.events, meta=tracer.meta)
        observed = summary["migration"]
        for key in (
            "handoffs", "handoff_blocks", "handoff_s",
            "rebalances", "rebalanced_blocks", "rebalance_s",
            "swaps", "swapped_blocks", "swap_in_s",
        ):
            assert observed[key] == migration[key], key
        engine.block_manager.assert_no_leaks()
        # Pool-direction invariants, checked on the raw event stream: KV
        # only ever enters the cluster through the prefill pool, handoffs
        # only go prefill → decode, and rebalance migrations stay inside
        # the decode pool.  (A request *can* finish homed on a prefill
        # device — when every handoff attempt finds the decode pool full it
        # is preempted and retried, and the retry's prefill-completion
        # token may be its last — so per-request final homes are not the
        # invariant; per-move directions are.)
        prefill_pool = set(engine._prefill_pool)
        decode_pool = set(engine._decode_pool)
        admitted_once: set[int] = set()
        for event in tracer.events:
            if event["kind"] == "handoff":
                assert event["src"] in prefill_pool
                assert event["dst"] in decode_pool
            elif event["kind"] == "migrate":
                assert event["src"] in decode_pool
                assert event["dst"] in decode_pool
            elif event["kind"] == "kv" and event["op"] == "alloc":
                # First admission always lands on the prefill pool; later
                # re-admissions may not (a swapped decode-phase sequence
                # resumes on its old decode home).
                if event["seq"] not in admitted_once:
                    assert event["device"] in prefill_pool
                    admitted_once.add(event["seq"])

    @pytest.mark.parametrize("preempt_mode", ["recompute", "swap"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_disagg_replay_determinism(self, seed, preempt_mode):
        """Same seed, same config → byte-identical report, twice over."""
        first = _run_disagg(seed, preempt_mode)[1].to_dict()
        second = _run_disagg(seed, preempt_mode)[1].to_dict()
        assert first == second


@pytest.mark.slow
class TestRandomDisaggRunsLong:
    """The long disagg sweep (weekly benchmark-smoke workflow)."""

    @pytest.mark.parametrize("preempt_mode", ["recompute", "swap"])
    @pytest.mark.parametrize("seed", range(2, 8))
    def test_long_episodes(self, seed, preempt_mode):
        engine, report, tracer = _run_disagg(
            seed, preempt_mode, num_blocks=30, with_tracer=True
        )
        assert report.completed + report.rejected + report.stranded == 25
        summary = analyze_trace(tracer.events, meta=tracer.meta)
        migration = report.to_dict()["migration"]
        assert summary["migration"]["handoff_s"] == migration["handoff_s"]
        engine.block_manager.assert_no_leaks()
