"""Randomized op-sequence property tests for the paged KV allocators.

The serving layer now has three interacting subsystems (block identity,
allocation policies, prefix sharing) multiplied by per-device sharding.
Example-based tests cannot cover that state space, so this tier drives the
allocators — the single-device :class:`BlockManager` and the
:class:`ShardedBlockManager` over 2/4 (and uneven) pools — through thousands
of seeded random ``allocate`` / ``allocate_shared`` / ``grow`` / CoW /
``free`` steps, calling ``check_invariants()`` after *every* operation, plus
the cross-device invariant: a sequence's block table lives in exactly its
home pool, never references a block outside it, and no other pool knows the
sequence.

CI runs the fixed fast-tier seeds on every push (``-m "not slow"``); the
weekly benchmark-smoke workflow runs the longer randomized sweep
(``-m slow``).  Every failure message includes the seed, so a red run is
replayable bit-for-bit.
"""

import numpy as np
import pytest

from repro.runtime.backends import MiLoBackend
from repro.serving import (
    BlockManager,
    EngineConfig,
    ServingEngine,
    ShardedBlockManager,
    poisson_workload,
)
from repro.serving.kv_cache import KVCacheExhausted

BLOCK_SIZE = 4

#: Pool layouts under test: a plain single-device pool and sharded managers
#: over even and deliberately uneven per-device pools.
LAYOUTS = {
    "single": (48,),
    "sharded2": (24, 24),
    "sharded4": (12, 12, 12, 12),
    "uneven3": (8, 22, 18),
}


def build_manager(layout):
    sizes = LAYOUTS[layout]
    if len(sizes) == 1:
        return BlockManager(num_blocks=sizes[0], block_size=BLOCK_SIZE)
    return ShardedBlockManager(
        [BlockManager(num_blocks=n, block_size=BLOCK_SIZE) for n in sizes]
    )


def pool_sizes(manager):
    if isinstance(manager, ShardedBlockManager):
        return [pool.num_blocks for pool in manager.pools]
    return [manager.num_blocks]


def assert_cross_device_invariants(manager, live):
    """Sharding-specific partition checks on top of ``check_invariants``."""
    manager.check_invariants()
    sizes = pool_sizes(manager)
    for seq_id in live:
        home = manager.home_device(seq_id)
        assert 0 <= home < len(sizes)
        table = manager.block_table(seq_id)
        assert table, f"live sequence {seq_id} holds no blocks"
        # No block table ever references a block outside its home pool.
        assert all(0 <= block_id < sizes[home] for block_id in table)
        if isinstance(manager, ShardedBlockManager):
            assert manager.pools[home].block_table(seq_id) == table
            for d, pool in enumerate(manager.pools):
                if d != home:
                    assert pool.blocks_held(seq_id) == 0


def drive_random_ops(layout, seed, steps):
    """One randomized episode; returns the number of mutating ops applied."""
    rng = np.random.default_rng(seed)
    manager = build_manager(layout)
    live: dict[int, int] = {}  # seq_id -> tokens covered by its table
    next_id = 0
    applied = 0
    note = f"layout={layout} seed={seed}"

    for step in range(steps):
        op = rng.choice(["alloc", "alloc_shared", "grow", "cow", "free"])
        try:
            if op == "alloc":
                tokens = int(rng.integers(1, 40))
                if manager.can_allocate(tokens):
                    manager.allocate(next_id, tokens)
                    live[next_id] = tokens
                    next_id += 1
                else:
                    with pytest.raises(KVCacheExhausted):
                        manager.allocate(next_id, tokens)
                applied += 1
            elif op == "alloc_shared":
                tokens = int(rng.integers(1, 40))
                prefix_id = int(rng.integers(0, 3))
                prefix_tokens = int(rng.integers(1, tokens + 1))
                share_partial = bool(rng.integers(0, 2))
                if manager.can_allocate_shared(
                    tokens, prefix_id, prefix_tokens, share_partial
                ):
                    manager.allocate_shared(
                        next_id, tokens, prefix_id, prefix_tokens, share_partial
                    )
                    live[next_id] = tokens
                    next_id += 1
                    applied += 1
            elif op == "grow" and live:
                seq_id = int(rng.choice(sorted(live)))
                blocks = int(rng.integers(1, 3))
                home_free = manager.free_blocks_on(manager.home_device(seq_id))
                if blocks <= home_free:
                    manager.grow(seq_id, blocks)
                    live[seq_id] += blocks * BLOCK_SIZE
                else:
                    with pytest.raises(KVCacheExhausted):
                        manager.grow(seq_id, blocks)
                applied += 1
            elif op == "cow" and live:
                seq_id = int(rng.choice(sorted(live)))
                held_tokens = manager.blocks_held(seq_id) * BLOCK_SIZE
                token_index = int(rng.integers(0, held_tokens))
                cost = manager.cow_cost(seq_id, token_index)
                assert cost in (0, 1)
                if cost <= manager.free_blocks_on(manager.home_device(seq_id)):
                    manager.ensure_writable(seq_id, token_index)
                    applied += 1
            elif op == "free" and live:
                seq_id = int(rng.choice(sorted(live)))
                manager.free(seq_id)
                del live[seq_id]
                applied += 1
        except AssertionError:
            raise
        except Exception as exc:  # pragma: no cover - diagnostic wrapper
            raise AssertionError(f"{note} step={step} op={op}: {exc!r}") from exc
        assert_cross_device_invariants(manager, live)

    for seq_id in sorted(live):
        manager.free(seq_id)
    manager.assert_no_leaks()
    assert manager.free_blocks == sum(pool_sizes(manager))
    return applied


class TestRandomOpSequences:
    """Seeded fast-tier episodes (run in CI on every push)."""

    @pytest.mark.parametrize("layout", sorted(LAYOUTS))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_invariants_hold_after_every_op(self, layout, seed):
        applied = drive_random_ops(layout, seed=seed, steps=1200)
        # The episode must actually exercise the allocator, not no-op out.
        assert applied > 400


@pytest.mark.slow
class TestRandomOpSequencesLong:
    """The long randomized sweep (weekly benchmark-smoke workflow)."""

    @pytest.mark.parametrize("layout", sorted(LAYOUTS))
    @pytest.mark.parametrize("seed", range(2, 12))
    def test_long_episodes(self, layout, seed):
        drive_random_ops(layout, seed=seed, steps=5000)


class TestRandomEngineRuns:
    """End-to-end randomized property: whole engines drain leak-free."""

    @pytest.mark.parametrize("devices", [2, 3])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_sharded_engine_drains_under_pressure(self, devices, seed):
        engine = ServingEngine(
            MiLoBackend(),
            "mixtral-8x7b",
            EngineConfig(
                block_size=8, kv_policy="ondemand", max_batch_size=1000, devices=devices
            ),
        )
        for pool in engine.block_manager.pools:
            pool.num_blocks = 30  # make every per-device pool bind
        workload = poisson_workload(
            25, qps=80.0, seed=seed, mean_prompt_tokens=48, mean_new_tokens=96,
            shared_prefix_tokens=32, prefix_groups=2,
        )
        report = engine.run(workload)
        # A request whose extent exceeds one shrunken per-device pool can
        # never run (KV is pinned to a home device) and is typed-rejected;
        # everything admissible completes.
        assert report.completed + report.rejected == 25
        assert report.completed >= 23
        assert report.preemptions > 0  # the pressure regime was reached
        cluster = report.to_dict()["cluster"]
        assert len(cluster["per_device"]) == devices
        for entry in cluster["per_device"]:
            assert 0 <= entry["kv_utilization_peak"] <= 1.0
        engine.block_manager.assert_no_leaks()

    @pytest.mark.parametrize("seed", [0, 1])
    def test_sharded_engine_matches_itself(self, seed):
        """Replay determinism under sharding (preemptions, homes and all)."""
        workload = poisson_workload(20, qps=60.0, seed=seed, mean_new_tokens=64)

        def run():
            engine = ServingEngine(
                MiLoBackend(),
                "mixtral-8x7b",
                EngineConfig(
                    block_size=8, kv_policy="ondemand", max_batch_size=1000,
                    devices=2, placement="frequency",
                ),
            )
            for pool in engine.block_manager.pools:
                pool.num_blocks = 40
            return engine.run(workload).to_dict()

        assert run() == run()
