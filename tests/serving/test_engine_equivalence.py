"""Report equivalence across the PR 6 engine execution modes.

The vectorized engine core has three independent switches that must never
change the simulated result, only how fast it is computed:

* ``fast_path`` — the event-driven steady-state loop vs the general
  per-iteration loop;
* ``debug_checks`` — per-run invariant auditing (KV-leak assertion) on/off;
* the memoized per-device iteration-cost cache (exercised implicitly by
  running the same engine twice).

Every comparison here is *byte-level* on the serialized JSON report: same
floats, same ordering, same preemption counts.  The committed goldens pin
the absolute behavior; these tests pin the cross-mode equivalence on richer
workload mixes than the goldens cover.
"""

import json

import pytest

from repro.runtime.backends import MiLoBackend
from repro.serving import EngineConfig, ServingEngine, poisson_workload

WORKLOADS = {
    # Steady decode at moderate load: long compressible stretches.
    "decode_heavy": dict(num_requests=80, qps=4.0, seed=21, mean_new_tokens=96),
    # Bursty arrivals: admission churn, queueing, small spans.
    "bursty": dict(num_requests=120, qps=60.0, seed=22, mean_new_tokens=32),
    # Shared prefixes under reservation: prefix cache on the fast path.
    "prefix_shared": dict(
        num_requests=60, qps=30.0, seed=23, mean_new_tokens=48,
        shared_prefix_tokens=32, prefix_groups=3,
    ),
    # Single-token decodes: finish events collapse onto prefill iterations.
    "single_token": dict(
        num_requests=50, qps=20.0, seed=24, mean_new_tokens=1, length_jitter=0.0,
    ),
}

CONFIGS = {
    "reserve_1dev": dict(),
    "reserve_4dev": dict(devices=4),
    "reserve_reject": dict(admission="reject", max_batch_size=8),
    "reserve_chunked": dict(prefill_chunk=32),
    # Overlap-aware layered cost model: epoch-keyed cost memo, per-layer
    # placements, drift observation interleaved with macro-stepping.
    "overlap_4dev": dict(devices=4, overlap=True),
    "overlap_replace": dict(devices=2, overlap=True, replacement_threshold=0.05),
    # Swap preemption under reservation: reserve never preempts, so the
    # swap machinery must be fully dormant on both loops.
    "swap_reserve_2dev": dict(devices=2, preempt_mode="swap"),
}


def run_report(workload_kwargs, config_kwargs, **overrides) -> str:
    config = EngineConfig(**{**config_kwargs, **overrides})
    engine = ServingEngine(MiLoBackend(), "mixtral-8x7b", config)
    report = engine.run(poisson_workload(**workload_kwargs))
    return json.dumps(report.to_dict(), sort_keys=True)


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_fast_path_report_is_byte_identical(workload, config):
    fast = run_report(WORKLOADS[workload], CONFIGS[config], fast_path=True)
    general = run_report(WORKLOADS[workload], CONFIGS[config], fast_path=False)
    assert fast == general


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_debug_checks_off_is_byte_identical(workload):
    """``debug_checks`` gates auditing only — never the simulated result."""
    checked = run_report(WORKLOADS[workload], {}, debug_checks=True)
    unchecked = run_report(WORKLOADS[workload], {}, debug_checks=False)
    assert checked == unchecked


def test_ondemand_falls_back_to_general_loop():
    """Growth/preemption workloads take the general loop under either flag:
    the fast path's no-mid-decode-allocation invariant excludes them, so the
    flag is a no-op there (still byte-identical)."""
    config = dict(kv_policy="ondemand", block_size=8, max_batch_size=1000)
    workload = dict(num_requests=40, qps=50.0, seed=25, mean_new_tokens=64)
    fast = run_report(workload, config, fast_path=True)
    general = run_report(workload, config, fast_path=False)
    assert fast == general


def test_disagg_falls_back_to_general_loop():
    """Disaggregated runs are excluded from the fast path outright (handoff
    stalls land between iterations); the flag must be a byte-level no-op."""
    config = dict(
        devices=3, prefill_devices=1, decode_devices=2,
        kv_policy="ondemand", block_size=8, max_batch_size=1000,
    )
    workload = dict(num_requests=40, qps=50.0, seed=25, mean_new_tokens=64)
    fast = run_report(workload, config, fast_path=True)
    general = run_report(workload, config, fast_path=False)
    assert fast == general


def test_swap_reserve_keeps_fast_path_dormant_equivalence():
    """``preempt_mode='swap'`` with reservation allocation stays eligible for
    the fast path (no preemption can ever fire), and the general loop's swap
    branches never trigger — the two loops agree byte for byte and match the
    recompute-mode report except for the migration section."""
    workload = dict(num_requests=60, qps=30.0, seed=27, mean_new_tokens=48)
    swap_fast = run_report(workload, {"devices": 2}, preempt_mode="swap", fast_path=True)
    swap_general = run_report(workload, {"devices": 2}, preempt_mode="swap", fast_path=False)
    assert swap_fast == swap_general
    recompute = json.loads(run_report(workload, {"devices": 2}))
    swapped = json.loads(swap_fast)
    migration = swapped.pop("migration")
    assert migration["swaps"] == 0 and migration["swap_in_s"] == 0.0
    assert swapped == recompute


def test_disagg_swap_modes_fast_flag_is_inert():
    """Swap-mode disaggregation (the everything-on configuration) also
    ignores ``fast_path`` byte-for-byte."""
    config = dict(
        devices=3, prefill_devices=1, decode_devices=2,
        kv_policy="ondemand", block_size=8, max_batch_size=1000,
        preempt_mode="swap",
    )
    workload = dict(num_requests=40, qps=60.0, seed=28, mean_new_tokens=64)
    fast = run_report(workload, config, fast_path=True)
    general = run_report(workload, config, fast_path=False)
    assert fast == general


def test_cost_cache_reuse_across_runs_is_byte_identical():
    """One engine serving the same workload twice (warm latency/cost memo)
    reports byte-identically to a cold engine."""
    workload = poisson_workload(num_requests=60, qps=10.0, seed=26)
    warm_engine = ServingEngine(MiLoBackend(), "mixtral-8x7b", EngineConfig())
    warm_engine.run(workload)  # populate the memo
    warm = json.dumps(warm_engine.run(workload).to_dict(), sort_keys=True)
    cold_engine = ServingEngine(MiLoBackend(), "mixtral-8x7b", EngineConfig())
    cold = json.dumps(cold_engine.run(workload).to_dict(), sort_keys=True)
    assert warm == cold
