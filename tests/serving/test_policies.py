"""Policy-level invariants: reservation vs on-demand allocation, preemption,
chunked prefill, and deterministic replay across the whole policy matrix.

The property-style tests here restate the serving invariants per policy:
no mid-decode OOM (the pool is never overdrawn), no starvation (every
admissible request completes), no KV leaks (blocks fully returned), and
on-demand allocation sustaining at least the reservation policy's
batch/QPS on identical workloads.
"""

import pytest

from repro.runtime.backends import MiLoBackend
from repro.serving import (
    BlockManager,
    ContinuousBatchingScheduler,
    EngineConfig,
    FifoPriorityPolicy,
    OnDemandPolicy,
    Request,
    RequestState,
    ReservationPolicy,
    SchedulerConfig,
    ServingEngine,
    make_allocation_policy,
    poisson_workload,
    replay_workload,
)


def req(i, arrival=0.0, prompt=8, decode=8, priority=0):
    return Request(
        request_id=i,
        arrival_time=arrival,
        prompt_tokens=prompt,
        max_new_tokens=decode,
        priority=priority,
    )


def make_scheduler(policy_name, num_blocks=16, block_size=8, max_batch=8, admission="queue"):
    pool = BlockManager(num_blocks=num_blocks, block_size=block_size)
    return ContinuousBatchingScheduler(
        pool,
        SchedulerConfig(max_batch_size=max_batch, admission=admission),
        allocation=make_allocation_policy(policy_name, pool),
    )


def tiny_engine(policy, num_blocks, block_size=8, **config):
    """A MiLo engine whose pool is shrunk so KV capacity actually binds."""
    engine = ServingEngine(
        MiLoBackend(),
        "mixtral-8x7b",
        EngineConfig(block_size=block_size, kv_policy=policy, max_batch_size=1000, **config),
    )
    engine.block_manager.num_blocks = num_blocks
    return engine


class TestPolicyFactory:
    def test_known_policies(self):
        pool = BlockManager(num_blocks=4, block_size=8)
        assert isinstance(make_allocation_policy("reserve", pool), ReservationPolicy)
        assert isinstance(make_allocation_policy("ondemand", pool), OnDemandPolicy)

    def test_unknown_policy_rejected(self):
        pool = BlockManager(num_blocks=4, block_size=8)
        with pytest.raises(ValueError, match="unknown KV allocation policy"):
            make_allocation_policy("paging", pool)

    def test_engine_config_validates_policy_and_chunk(self):
        with pytest.raises(ValueError):
            EngineConfig(kv_policy="paging")
        with pytest.raises(ValueError):
            EngineConfig(prefill_chunk=0)
        with pytest.raises(ValueError):
            SchedulerConfig(prefill_chunk=-3)

    def test_allocation_policy_must_wrap_scheduler_pool(self):
        pool = BlockManager(num_blocks=4, block_size=8)
        other = BlockManager(num_blocks=4, block_size=8)
        with pytest.raises(ValueError):
            ContinuousBatchingScheduler(pool, allocation=ReservationPolicy(other))


class TestOnDemandAdmission:
    def test_ondemand_admits_more_concurrent_sequences(self):
        """On-demand charges written tokens, not the full decode budget."""
        # Each request: prompt 8 + decode 24 = 32 tokens = 4 blocks reserved,
        # but only 2 blocks (prompt+1 = 9 tokens) on demand at admission.
        reserve = make_scheduler("reserve", num_blocks=8, block_size=8)
        ondemand = make_scheduler("ondemand", num_blocks=8, block_size=8)
        for sched in (reserve, ondemand):
            for i in range(4):
                sched.add_request(req(i, prompt=8, decode=24))
            sched.admit(now=0.0)
        assert len(reserve.running) == 2   # 8 blocks / 4 per seq
        assert len(ondemand.running) == 4  # 8 blocks / 2 per seq

    def test_never_fitting_request_rejected_by_both(self):
        for name in ("reserve", "ondemand"):
            sched = make_scheduler(name, num_blocks=2, block_size=8)
            seq = sched.add_request(req(0, prompt=64, decode=64))
            assert seq.state is RequestState.REJECTED

    def test_pool_never_overdrawn_during_growth(self):
        sched = make_scheduler("ondemand", num_blocks=4, block_size=8)
        for i in range(2):
            sched.add_request(req(i, prompt=8, decode=24))
        sched.admit(now=0.0)
        for step in range(1, 120):
            sched.ensure_capacity()
            sched.admit(now=float(step))
            if not sched.has_work:
                break
            for seq in list(sched.running):
                seq.advance(now=float(step))
            sched.evict_finished()
            assert sched.block_manager.used_blocks <= sched.block_manager.num_blocks
        assert len(sched.finished) == 2
        sched.block_manager.assert_no_leaks()


class TestPreemption:
    def drive(self, sched, max_steps=200):
        """Run admit/grow/advance/evict until the scheduler drains."""
        for step in range(1, max_steps):
            sched.ensure_capacity()
            sched.admit(now=float(step))
            if not sched.running:
                if not sched.waiting:
                    break
                continue
            for seq in list(sched.running):
                seq.advance(now=float(step), prefill_chunk=sched.config.prefill_chunk)
            sched.evict_finished()
        return sched

    def test_lowest_precedence_victim_selected(self):
        # Pool of 4 blocks; both requests admit on-demand with 2 blocks each
        # (prompt 8 + 1 token -> 2 blocks of 8).  The first decode token that
        # crosses a block boundary finds the pool dry and must preempt the
        # later-enqueued request.
        sched = make_scheduler("ondemand", num_blocks=4, block_size=8)
        first = sched.add_request(req(0, prompt=8, decode=24))
        second = sched.add_request(req(1, prompt=8, decode=24))
        sched.admit(now=0.0)
        for seq in list(sched.running):  # prefill: both emit their first token
            seq.advance(now=1.0)
        # Advance decode until a growth deficit appears; request 1 must yield.
        self.drive(sched)
        assert first.is_finished and second.is_finished
        assert second.preemptions >= 1
        assert first.preemptions == 0 or first.enqueue_index < second.enqueue_index
        assert sched.preemptions >= 1
        assert sched.recomputed_tokens > 0
        sched.block_manager.assert_no_leaks()

    def test_preempted_sequence_rejoins_ahead_of_later_arrivals(self):
        sched = make_scheduler("ondemand", num_blocks=4, block_size=8, max_batch=8)
        a = sched.add_request(req(0, prompt=8, decode=24))
        b = sched.add_request(req(1, prompt=8, decode=24))
        sched.admit(now=0.0)
        sched.allocation.release(b)
        b.preempt()
        b.requeue()
        sched.running.remove(b)
        sched.waiting.append(b)
        late = sched.add_request(req(2, prompt=8, decode=8))
        sched.waiting.sort(key=sched.policy.queue_key)
        assert [s.request.request_id for s in sched.waiting] == [1, 2]
        assert a.state is RequestState.RUNNING

    def test_preempted_sequence_never_load_shed_in_reject_mode(self):
        sched = make_scheduler("ondemand", num_blocks=4, block_size=8, admission="reject")
        keeper = sched.add_request(req(0, prompt=8, decode=24))
        victim = sched.add_request(req(1, prompt=8, decode=24))
        sched.admit(now=0.0)
        for seq in list(sched.running):
            seq.advance(now=1.0)
        self.drive(sched)
        # The victim was preempted (pool dry) but never rejected: both finish.
        assert keeper.is_finished and victim.is_finished
        assert victim.preemptions >= 1
        assert not sched.rejected
        sched.block_manager.assert_no_leaks()

    def test_recompute_on_resume_refeeds_generated_tokens(self):
        seq = make_scheduler("ondemand").add_request(req(0, prompt=10, decode=6))
        seq.admit(0.0)
        seq.advance(1.0)  # prefill -> 1 generated token
        seq.advance(2.0)
        seq.advance(3.0)  # 3 generated tokens
        recomputed = seq.preempt()
        assert recomputed == 10 + 3  # prompt + every generated token
        assert seq.state is RequestState.PREEMPTED
        seq.requeue()
        seq.admit(4.0)
        assert seq.prefill_extent == 13  # recompute pass covers prompt + generated
        seq.advance(5.0)  # re-prefill completes, next new token emitted
        assert seq.generated_tokens == 4
        assert seq.first_token_time == 1.0  # TTFT keeps the original delivery
        seq.advance(6.0)
        seq.advance(7.0)
        assert seq.is_finished


class TestChunkedPrefill:
    def test_chunk_splits_prefill_iterations(self):
        backend = MiLoBackend()
        engine = ServingEngine(
            backend, "mixtral-8x7b", EngineConfig(prefill_chunk=8)
        )
        report = engine.run(replay_workload([(0.0, 30, 4)]))
        # ceil(30 / 8) = 4 prefill iterations + 3 decode iterations.
        assert report.iterations == 4 + 3
        spec = engine.spec
        expected = (
            3 * backend.iteration_latency(spec, 8).total
            + backend.iteration_latency(spec, 6).total
            + 3 * backend.iteration_latency(spec, 1).total
        )
        assert report.sim_time_s == pytest.approx(expected, rel=1e-12)

    def test_chunked_prefill_piggybacks_with_decode(self):
        """A decoding sequence keeps emitting while a long prompt trickles in."""
        sched = make_scheduler("reserve", num_blocks=64, block_size=8)
        sched = ContinuousBatchingScheduler(
            sched.block_manager, SchedulerConfig(prefill_chunk=4)
        )
        short = sched.add_request(req(0, prompt=4, decode=12))
        long = sched.add_request(req(1, prompt=16, decode=4))
        sched.admit(now=0.0)
        # Iteration 1: short finishes prefill (4 tokens) + long's first chunk.
        assert sched.batch_tokens() == 4 + 4
        for seq in list(sched.running):
            seq.advance(now=1.0, prefill_chunk=4)
        assert short.generated_tokens == 1
        assert not long.prefill_done and long.prefill_progress == 4
        # Iteration 2: short decodes (1 row) alongside long's next chunk.
        assert sched.batch_tokens() == 1 + 4
        for seq in list(sched.running):
            seq.advance(now=2.0, prefill_chunk=4)
        assert short.generated_tokens == 2

    def test_chunked_prefill_improves_competing_ttft(self):
        """Chunking a long prompt lets a short request start sooner."""
        trace = [(0.0, 600, 8), (0.001, 16, 8)]
        whole = tiny_engine("reserve", num_blocks=200).run(replay_workload(trace))
        chunked = tiny_engine("reserve", num_blocks=200, prefill_chunk=64).run(
            replay_workload(trace)
        )
        ttft_whole = next(r for r in whole.requests if r["request_id"] == 1)["ttft_s"]
        ttft_chunked = next(r for r in chunked.requests if r["request_id"] == 1)["ttft_s"]
        assert ttft_chunked < ttft_whole

    def test_default_chunk_none_matches_pr1_iteration_count(self):
        backend = MiLoBackend()
        engine = ServingEngine(backend, "mixtral-8x7b")
        report = engine.run(replay_workload([(0.0, 32, 4)]))
        assert report.iterations == 4  # 1 prefill + 3 decode, unchanged


class TestPolicyComparisonProperties:
    """On-demand sustains >= reservation's batch/QPS on identical workloads."""

    WORKLOADS = [
        poisson_workload(40, qps=50.0, seed=seed, mean_prompt_tokens=48, mean_new_tokens=96)
        for seed in (0, 1, 2)
    ]

    @pytest.mark.parametrize("workload", WORKLOADS, ids=["seed0", "seed1", "seed2"])
    def test_ondemand_sustains_at_least_reservation(self, workload):
        reserve = tiny_engine("reserve", num_blocks=60).run(workload)
        ondemand = tiny_engine("ondemand", num_blocks=60).run(workload)
        # Everyone completes under both policies (no starvation, no loss).
        assert reserve.completed == ondemand.completed == len(workload)
        assert ondemand.peak_batch >= reserve.peak_batch
        assert ondemand.sustained_qps >= reserve.sustained_qps
        assert ondemand.kv_utilization_peak <= 1.0

    @pytest.mark.parametrize("policy", ["reserve", "ondemand"])
    def test_blocks_fully_returned(self, policy):
        engine = tiny_engine(policy, num_blocks=60)
        engine.run(poisson_workload(30, qps=50.0, seed=3, mean_new_tokens=96))
        assert engine.block_manager.outstanding_sequences == 0
        assert engine.block_manager.free_blocks == engine.block_manager.num_blocks
        engine.block_manager.assert_no_leaks()

    @pytest.mark.parametrize("policy", ["reserve", "ondemand"])
    def test_deterministic_replay_per_policy(self, policy):
        workload = poisson_workload(30, qps=50.0, seed=4, mean_new_tokens=96)
        first = tiny_engine(policy, num_blocks=60).run(workload).to_dict()
        second = tiny_engine(policy, num_blocks=60).run(workload).to_dict()
        assert first == second  # bit-exact, preemptions and all

    PRESSURE = dict(qps=100.0, seed=5, mean_prompt_tokens=48, mean_new_tokens=128)

    def test_ondemand_preempts_under_pressure_and_still_drains(self):
        workload = poisson_workload(30, **self.PRESSURE)
        engine = tiny_engine("ondemand", num_blocks=60)
        report = engine.run(workload)
        assert report.preemptions > 0
        assert report.recomputed_tokens > 0
        assert report.completed == 30
        engine.block_manager.assert_no_leaks()

    def test_reservation_never_preempts(self):
        workload = poisson_workload(30, **self.PRESSURE)
        report = tiny_engine("reserve", num_blocks=60).run(workload)
        assert report.completed == 30
        assert report.preemptions == 0
        assert report.recomputed_tokens == 0


def strip_prefixes(workload):
    """The identical workload with prefix identity removed (no sharing)."""
    from dataclasses import replace

    return [replace(r, prefix_id=None, prefix_tokens=0) for r in workload]


class TestPrefixSharingAdmission:
    def test_shared_admission_packs_more_concurrent_sequences(self):
        """Sharers only charge the pool for their private blocks."""
        # Prompt = 16 shared + 8 private = 24 tokens; +1 decode token on
        # admission -> 4 blocks each, but 2 of them shared across the group.
        sched = make_scheduler("ondemand", num_blocks=8, block_size=8)
        plain = make_scheduler("ondemand", num_blocks=8, block_size=8)
        for i in range(3):
            sched.add_request(
                Request(
                    request_id=i, arrival_time=0.0, prompt_tokens=24,
                    max_new_tokens=8, prefix_id=0, prefix_tokens=16,
                )
            )
            plain.add_request(req(i, prompt=24, decode=8))
        sched.admit(now=0.0)
        plain.admit(now=0.0)
        assert len(plain.running) == 2   # 8 blocks / 4 per seq
        assert len(sched.running) == 3   # 2 shared + 3 x 2 private = 8 blocks
        assert sched.block_manager.shared_blocks == 2

    def test_prefix_hit_skips_prefill_compute(self):
        sched = make_scheduler("ondemand", num_blocks=16, block_size=8)
        for i in range(2):
            sched.add_request(
                Request(
                    request_id=i, arrival_time=0.0, prompt_tokens=24,
                    max_new_tokens=4, prefix_id=0, prefix_tokens=16,
                )
            )
        sched.admit(now=0.0)
        first, second = sched.running
        assert first.prefix_hit_tokens == 0      # registrar computes everything
        assert second.prefix_hit_tokens == 16    # sharer skips the resident KV
        assert first.tokens_this_iteration() == 24
        assert second.tokens_this_iteration() == 8

    def test_full_prompt_hit_still_computes_one_token(self):
        """A 100% resident prompt must still run its final prefill token
        (the iteration that emits the first output token)."""
        sched = make_scheduler("ondemand", num_blocks=16, block_size=8)
        for i in range(2):
            sched.add_request(
                Request(
                    request_id=i, arrival_time=0.0, prompt_tokens=16,
                    max_new_tokens=4, prefix_id=0, prefix_tokens=16,
                )
            )
        sched.admit(now=0.0)
        sharer = sched.running[1]
        assert sharer.prefix_hit_tokens == 15
        assert sharer.tokens_this_iteration() == 1

    @pytest.mark.parametrize("policy", ["reserve", "ondemand"])
    def test_shared_runs_drain_without_leaks(self, policy):
        workload = poisson_workload(
            30, qps=50.0, seed=6, mean_prompt_tokens=32, mean_new_tokens=48,
            shared_prefix_tokens=64, prefix_groups=3,
        )
        engine = tiny_engine(policy, num_blocks=80)
        report = engine.run(workload)
        assert report.completed == 30
        assert report.prefix_hit_tokens > 0
        assert report.prefix_dedup_ratio > 1.0
        engine.block_manager.assert_no_leaks()

    @pytest.mark.parametrize("policy", ["reserve", "ondemand"])
    def test_shared_runs_are_deterministic(self, policy):
        workload = poisson_workload(
            25, qps=50.0, seed=7, mean_new_tokens=48,
            shared_prefix_tokens=48, prefix_groups=2,
        )
        first = tiny_engine(policy, num_blocks=80).run(workload).to_dict()
        second = tiny_engine(policy, num_blocks=80).run(workload).to_dict()
        assert first == second

    def test_sole_holder_divergence_unregisters_before_late_sharer(self):
        """A lone registrar writing into its partial prefix block must pull
        it from the index (free, no copy) so a later group member does not
        hit KV that has diverged from the pure prefix."""
        sched = make_scheduler("ondemand", num_blocks=32, block_size=8)
        shared_req = lambda i: Request(  # noqa: E731 - local literal helper
            request_id=i, arrival_time=0.0, prompt_tokens=20,
            max_new_tokens=6, prefix_id=0, prefix_tokens=20,
        )
        early = sched.add_request(shared_req(0))
        sched.admit(now=0.0)
        # The deficit pass before early's first emitting iteration performs
        # the free un-registration of the about-to-diverge tail block.
        assert sched.ensure_capacity() == []
        early.advance(now=1.0)
        late = sched.add_request(shared_req(1))
        sched.admit(now=2.0)
        assert late.prefix_hit_tokens == 16  # full blocks only, not the tail
        assert sched.block_manager.cow_copies == 0
        sched.block_manager.check_invariants()

    def test_resumed_sequence_never_shares_the_partial_tail(self):
        """Recompute-on-resume re-prefills generated tokens into the tail
        block; admission must map it privately (prefill extent != prefix)
        even though the prompt alone equals the prefix."""
        sched = make_scheduler("ondemand", num_blocks=32, block_size=8)
        sharers = [
            sched.add_request(
                Request(
                    request_id=i, arrival_time=0.0, prompt_tokens=20,
                    max_new_tokens=8, prefix_id=0, prefix_tokens=20,
                )
            )
            for i in range(2)
        ]
        sched.admit(now=0.0)
        keeper, victim = sharers
        for seq in sharers:  # prefill: each emits its first token
            seq.advance(now=1.0)
        sched._preempt(victim)
        assert victim.recompute_base == 1
        sched.admit(now=2.0)
        assert victim.state is RequestState.RUNNING
        pool = sched.block_manager
        k_table = pool.block_table(keeper.request.request_id)
        v_table = pool.block_table(victim.request.request_id)
        assert v_table[:2] == k_table[:2]   # full prefix blocks still shared
        assert v_table[2] != k_table[2]     # the divergent tail is private
        pool.check_invariants()

    def test_cow_fires_end_to_end(self):
        """Two sequences whose whole prompt is a partial-tailed prefix share
        the tail block; the first decode write copies it (CoW) and both
        finish with the sharer's KV intact."""
        trace = [
            (0.0, 20, 6, 0, 0, 20),
            (0.0, 20, 6, 0, 0, 20),
        ]
        engine = tiny_engine("ondemand", num_blocks=40)
        report = engine.run(replay_workload(trace))
        assert report.completed == 2
        assert report.prefix_cow_copies >= 1
        assert report.prefix_hit_tokens > 0
        engine.block_manager.assert_no_leaks()


class TestPrefixSharingProperties:
    """Shared-prefix traffic beats the identical unshared traffic under
    on-demand allocation at equal VRAM (the ISSUE 3 acceptance property)."""

    WORKLOAD = poisson_workload(
        60, qps=40.0, seed=11, mean_prompt_tokens=16, mean_new_tokens=32,
        shared_prefix_tokens=96, prefix_groups=2,
    )

    def test_sharing_beats_no_sharing_batch_blocks_qps(self):
        shared_engine = tiny_engine("ondemand", num_blocks=100)
        shared = shared_engine.run(self.WORKLOAD)
        unshared_engine = tiny_engine("ondemand", num_blocks=100)
        unshared = unshared_engine.run(strip_prefixes(self.WORKLOAD))
        assert shared.completed == unshared.completed == 60
        assert shared.peak_batch > unshared.peak_batch
        # Strictly fewer physical block allocations serve the same workload
        # (both runs saturate the pool, so the cumulative count is the
        # meaningful "allocates fewer blocks" measure).
        assert (
            shared_engine.block_manager.physical_allocs
            < unshared_engine.block_manager.physical_allocs
        )
        assert shared.kv_peak_used_blocks <= unshared.kv_peak_used_blocks
        assert shared.sustained_qps > unshared.sustained_qps
        assert shared.prefix_hit_tokens > 0
        assert shared.prefix_shared_blocks_peak > 0
        assert unshared.prefix_hit_tokens == 0
        assert unshared.prefix_dedup_ratio == 1.0

    def test_victim_selection_prefers_low_sharing_holder(self):
        """Preempting a sharer frees little; the policy picks the private
        holder when priorities tie, even if it enqueued earlier."""
        pool = BlockManager(num_blocks=16, block_size=8)
        sched = ContinuousBatchingScheduler(
            pool,
            SchedulerConfig(max_batch_size=8),
            allocation=make_allocation_policy("ondemand", pool),
        )
        private = sched.add_request(req(0, prompt=24, decode=8))
        sharers = [
            sched.add_request(
                Request(
                    request_id=i, arrival_time=0.0, prompt_tokens=24,
                    max_new_tokens=8, prefix_id=0, prefix_tokens=24,
                )
            )
            for i in (1, 2)
        ]
        sched.admit(now=0.0)
        assert len(sched.running) == 3
        candidates = list(sched.running)
        victim = sched.policy.select_victim(candidates, pool)
        assert victim is private  # lowest-sharing holder despite earliest enqueue
        # Without the pool the classic (priority, enqueue_index) order rules.
        assert sched.policy.select_victim(candidates) is sharers[-1]
