"""Scheduler invariants: FIFO within priority, no starvation, bounded batch."""

import pytest

from repro.serving import (
    BlockManager,
    ContinuousBatchingScheduler,
    Request,
    RequestState,
    SchedulerConfig,
)


def make_scheduler(num_blocks=16, block_size=8, max_batch=8, admission="queue"):
    return ContinuousBatchingScheduler(
        BlockManager(num_blocks=num_blocks, block_size=block_size),
        SchedulerConfig(max_batch_size=max_batch, admission=admission),
    )


def req(i, arrival=0.0, prompt=8, decode=8, priority=0):
    return Request(
        request_id=i,
        arrival_time=arrival,
        prompt_tokens=prompt,
        max_new_tokens=decode,
        priority=priority,
    )


def finish(scheduler, seq):
    """Drive a running sequence to completion and evict it."""
    now = 0.0
    while not seq.is_finished:
        now += 1.0
        seq.advance(now)
    scheduler.evict_finished()


class TestAdmissionOrder:
    def test_fifo_within_priority(self):
        sched = make_scheduler()
        for i in range(4):
            sched.add_request(req(i))
        admitted = sched.admit(now=0.0)
        assert [s.request.request_id for s in admitted] == [0, 1, 2, 3]

    def test_priority_classes_are_strict(self):
        sched = make_scheduler(max_batch=2)
        sched.add_request(req(0, priority=1))
        sched.add_request(req(1, priority=0))  # more urgent, arrived later
        sched.add_request(req(2, priority=1))
        admitted = sched.admit(now=0.0)
        assert [s.request.request_id for s in admitted] == [1, 0]

    def test_fifo_within_each_priority_class(self):
        sched = make_scheduler(max_batch=8)
        order = [(0, 1), (1, 0), (2, 1), (3, 0)]
        for i, prio in order:
            sched.add_request(req(i, priority=prio))
        admitted = sched.admit(now=0.0)
        assert [s.request.request_id for s in admitted] == [1, 3, 0, 2]


class TestCapacityBounds:
    def test_batch_never_exceeds_max_batch_size(self):
        sched = make_scheduler(num_blocks=100, max_batch=3)
        for i in range(10):
            sched.add_request(req(i))
        sched.admit(now=0.0)
        assert len(sched.running) == 3
        assert len(sched.waiting) == 7

    def test_batch_never_exceeds_kv_capacity(self):
        # Each request needs 2 blocks (16 tokens / block_size 8); 5 blocks -> 2 seqs.
        sched = make_scheduler(num_blocks=5, block_size=8, max_batch=8)
        for i in range(4):
            sched.add_request(req(i, prompt=8, decode=8))
        sched.admit(now=0.0)
        assert len(sched.running) == 2
        assert sched.block_manager.used_blocks <= sched.block_manager.num_blocks

    def test_never_fitting_request_rejected_in_queue_mode(self):
        sched = make_scheduler(num_blocks=2, block_size=8)
        seq = sched.add_request(req(0, prompt=64, decode=64))  # needs 16 blocks
        assert seq.state is RequestState.REJECTED
        assert not sched.waiting

    def test_reject_mode_sheds_load_when_full(self):
        sched = make_scheduler(num_blocks=2, block_size=8, admission="reject")
        sched.add_request(req(0, prompt=8, decode=8))  # takes both blocks
        sched.add_request(req(1, prompt=8, decode=8))  # would fit an empty pool
        sched.admit(now=0.0)
        assert [s.request.request_id for s in sched.running] == [0]
        assert [s.request.request_id for s in sched.rejected] == [1]


class TestContinuousBatching:
    def test_no_starvation_head_of_line_blocks(self):
        """A big queued request is not overtaken by smaller later arrivals."""
        sched = make_scheduler(num_blocks=4, block_size=8, max_batch=8)
        sched.add_request(req(0, prompt=8, decode=8))    # 2 blocks, admitted
        sched.add_request(req(1, prompt=16, decode=16))  # 4 blocks, must wait
        sched.add_request(req(2, prompt=8, decode=8))    # 2 blocks, would fit now
        sched.admit(now=0.0)
        assert [s.request.request_id for s in sched.running] == [0]
        # Queue mode refuses to skip request 1 even though 2 would fit.
        assert [s.request.request_id for s in sched.waiting] == [1, 2]

    def test_eviction_frees_blocks_and_unblocks_queue(self):
        sched = make_scheduler(num_blocks=4, block_size=8, max_batch=8)
        first = sched.add_request(req(0, prompt=8, decode=2))
        sched.add_request(req(1, prompt=16, decode=16))
        sched.admit(now=0.0)
        finish(sched, first)
        assert sched.block_manager.used_blocks == 0
        admitted = sched.admit(now=1.0)
        assert [s.request.request_id for s in admitted] == [1]

    def test_all_requests_eventually_served(self):
        """FIFO + bounded service time => every queued request is admitted."""
        sched = make_scheduler(num_blocks=4, block_size=8, max_batch=2)
        seqs = [sched.add_request(req(i, prompt=8, decode=2)) for i in range(6)]
        served = []
        for _ in range(20):
            sched.admit(now=0.0)
            if not sched.running:
                break
            for seq in list(sched.running):
                seq.advance(now=1.0)
                seq.advance(now=2.0)
            served += [s.request.request_id for s in sched.evict_finished()]
        assert served == [0, 1, 2, 3, 4, 5]
        assert all(s.is_finished for s in seqs)

    def test_has_work_and_batch_tokens(self):
        sched = make_scheduler()
        assert not sched.has_work
        sched.add_request(req(0, prompt=5, decode=2))
        sched.add_request(req(1, prompt=3, decode=2))
        assert sched.has_work
        sched.admit(now=0.0)
        # Both sequences are prefilling: whole prompts count as token rows.
        assert sched.batch_tokens() == 8
        for seq in sched.running:
            seq.advance(now=1.0)
        # Now both decode: one token row each.
        assert sched.batch_tokens() == 2


class TestConfigValidation:
    def test_bad_admission_mode(self):
        with pytest.raises(ValueError):
            SchedulerConfig(admission="drop")

    def test_bad_max_batch(self):
        with pytest.raises(ValueError):
            SchedulerConfig(max_batch_size=0)
