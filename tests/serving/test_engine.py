"""End-to-end serving engine tests: determinism, capacity, OOM, accounting."""

import pytest

from repro.models import FULL_MODEL_SPECS
from repro.runtime.backends import (
    GPTQ3bitBackend,
    MiLoBackend,
    OutOfMemoryError,
    PyTorchFP16Backend,
)
from repro.serving import (
    EngineConfig,
    ServingEngine,
    poisson_workload,
    replay_workload,
)

MIXTRAL = FULL_MODEL_SPECS["mixtral-8x7b"]

# (arrival, prompt, decode): three requests that overlap in flight.
TRACE = [
    (0.0, 32, 4),
    (0.01, 16, 8),
    (0.02, 16, 2),
]


def milo_engine(**config):
    return ServingEngine(MiLoBackend(), "mixtral-8x7b", EngineConfig(**config))


class TestConstruction:
    def test_fp16_mixtral_raises_shared_oom(self):
        """Admission control and Table 7 share the typed OutOfMemoryError path."""
        with pytest.raises(OutOfMemoryError) as exc_info:
            ServingEngine(PyTorchFP16Backend(), "mixtral-8x7b")
        err = exc_info.value
        assert err.backend == "pytorch-fp16"
        assert err.required_gb > err.available_gb == 40.0
        assert err.deficit_gb == pytest.approx(err.required_gb - 40.0)

    def test_unknown_spec_rejected(self):
        with pytest.raises(KeyError):
            ServingEngine(MiLoBackend(), "gpt-5")

    def test_kv_pool_sized_from_free_vram(self):
        engine = milo_engine()
        backend = MiLoBackend()
        free_gb = backend.free_memory_gb(MIXTRAL) - 1.0  # default reserve
        expected = int(free_gb * 1024**3 // (MIXTRAL.kv_bytes_per_token * 16))
        assert engine.block_manager.num_blocks == expected

    def test_quantized_backend_sustains_larger_batch_than_fp16(self):
        """The paper's memory savings read as serving capacity on DeepSeek,
        where FP16 fits but leaves far fewer KV blocks than 3-bit MiLo."""
        config = EngineConfig(max_batch_size=100_000)
        fp16 = ServingEngine(PyTorchFP16Backend(), "deepseek-moe", config)
        milo = ServingEngine(MiLoBackend(), "deepseek-moe", config)
        assert fp16.max_batch_size(192) > 0
        assert milo.max_batch_size(192) > fp16.max_batch_size(192)


class TestDeterministicReplay:
    def test_exact_completion_order(self):
        report = milo_engine().run(replay_workload(TRACE))
        # Request 2 (2 decode tokens) finishes first, then 0 (4), then 1 (8).
        assert report.completion_order == [2, 0, 1]
        assert report.completed == 3 and report.rejected == 0

    def test_latency_totals_are_reproducible_exactly(self):
        first = milo_engine().run(replay_workload(TRACE)).to_dict()
        second = milo_engine().run(replay_workload(TRACE)).to_dict()
        assert first == second  # bit-exact, not approximately equal

    def test_sim_time_is_sum_of_iteration_latencies(self):
        """Serially-dependent decode: sim time for one request equals
        prefill + (n-1) single-token decode iterations of the backend."""
        backend = MiLoBackend()
        engine = ServingEngine(backend, "mixtral-8x7b")
        report = engine.run(replay_workload([(0.0, 32, 4)]))
        expected = (
            backend.iteration_latency(MIXTRAL, 32).total
            + 3 * backend.iteration_latency(MIXTRAL, 1).total
        )
        assert report.sim_time_s == pytest.approx(expected, rel=1e-12)
        assert report.iterations == 4

    def test_poisson_runs_are_seed_deterministic(self):
        r1 = milo_engine().run(poisson_workload(40, qps=10.0, seed=3)).to_dict()
        r2 = milo_engine().run(poisson_workload(40, qps=10.0, seed=3)).to_dict()
        assert r1 == r2

    def test_metric_ordering(self):
        report = milo_engine().run(poisson_workload(40, qps=10.0, seed=3))
        assert 0 < report.ttft["p50"] <= report.ttft["p95"] <= report.ttft["max"]
        assert 0 < report.tpot["p50"] <= report.tpot["p95"]
        assert report.sustained_qps > 0


class TestResourceAccounting:
    def test_no_kv_leaks_after_run(self):
        engine = milo_engine()
        engine.run(poisson_workload(30, qps=20.0, seed=1))
        assert engine.block_manager.outstanding_sequences == 0
        assert engine.block_manager.free_blocks == engine.block_manager.num_blocks
        engine.block_manager.assert_no_leaks()

    def test_peak_usage_bounded_by_pool(self):
        report = milo_engine().run(poisson_workload(50, qps=50.0, seed=2))
        assert 0 < report.kv_peak_used_blocks <= report.kv_num_blocks
        assert report.peak_batch <= 64  # default max_batch_size

    def test_continuous_batching_actually_batches(self):
        """Under a burst, multiple sequences share iterations."""
        trace = [(i * 1e-4, 16, 8) for i in range(8)]
        report = milo_engine().run(replay_workload(trace))
        assert report.peak_batch > 1
        # Batched decode takes far fewer iterations than serial would.
        assert report.iterations < 8 * 9

    def test_rejected_requests_are_reported(self):
        # One block total: any request needing more is rejected up front.
        engine = milo_engine(block_size=16, max_batch_size=4)
        engine.block_manager.num_blocks = 1
        report = engine.run(replay_workload([(0.0, 8, 4), (0.0, 64, 64)]))
        assert report.completed == 1
        assert report.rejected == 1
        states = {r["request_id"]: r["state"] for r in report.requests}
        assert states[0] == "finished" and states[1] == "rejected"

    def test_report_schema(self):
        report = milo_engine().run(replay_workload(TRACE)).to_dict()
        expected_keys = {
            "backend", "model", "device", "policy", "num_requests", "completed",
            "rejected", "iterations", "preemptions", "recomputed_tokens",
            "sim_time_s", "sustained_qps", "ttft_s", "tpot_s", "e2e_s", "batch",
            "kv_cache", "kv_utilization_peak", "prefix_cache",
            "completion_order", "requests",
        }
        assert set(report) == expected_keys
        for summary in ("ttft_s", "tpot_s", "e2e_s"):
            assert set(report[summary]) == {"p50", "p95", "mean", "max"}
        assert set(report["kv_cache"]) == {"num_blocks", "block_size", "peak_used_blocks"}
        assert set(report["prefix_cache"]) == {
            "hit_tokens", "hit_blocks", "shared_blocks_peak", "cow_copies",
            "dedup_ratio",
        }
        assert report["policy"] == {"kv": "reserve", "scheduler": "priority-fifo"}
        # Reservation never preempts; utilization is a ratio of the pool.
        assert report["preemptions"] == 0 and report["recomputed_tokens"] == 0
        assert 0 < report["kv_utilization_peak"] <= 1.0
        # No prefix-carrying requests: the cache reports all-zero / neutral.
        assert report["prefix_cache"] == {
            "hit_tokens": 0, "hit_blocks": 0, "shared_blocks_peak": 0,
            "cow_copies": 0, "dedup_ratio": 1.0,
        }


class TestBackendInteraction:
    def test_gemv_backend_serves_but_slowly(self):
        """GPTQ's batch-1 kernel completes the workload with far lower QPS."""
        trace = [(i * 0.05, 16, 4) for i in range(6)]
        gptq = ServingEngine(GPTQ3bitBackend(), "mixtral-8x7b").run(replay_workload(trace))
        milo = milo_engine().run(replay_workload(trace))
        assert gptq.completed == milo.completed == 6
        assert gptq.sim_time_s > 2 * milo.sim_time_s

    def test_iteration_latency_chunks_for_capped_kernels(self):
        backend = GPTQ3bitBackend()
        one = backend.iteration_latency(MIXTRAL, 1)
        four = backend.iteration_latency(MIXTRAL, 4)
        assert four.total == pytest.approx(4 * one.total, rel=1e-9)
