"""``REPORT_SCHEMA_KEYS`` exhaustiveness against *live* reports.

The RPT001 lint rule statically checks string keys written in the report
builders, but it cannot see keys that arrive from other modules (the
``summarize_latencies`` p50/p95/mean/max section lives in ``repro.eval``)
or from data-driven dict construction.  This test closes that gap
dynamically: run real sims covering every optional report section
(cluster + overlap + dynamic re-placement, prefix cache, on-demand
preemption, reject admission), collect every key recursively, and require
the schema constant to cover all of them — and, conversely, that the
constant carries no dead entries beyond the sections a stock run cannot
produce.
"""

from __future__ import annotations

import pytest

from repro.runtime.backends import MiLoBackend
from repro.serving import EngineConfig, ServingEngine, poisson_workload
from repro.serving.engine import REPORT_SCHEMA_KEYS

#: (config kwargs, workload kwargs) pairs chosen so the union of their
#: reports exercises every optional report section.
SCENARIOS = {
    # cluster + overlap + migration sections.
    "overlap_replace": (
        dict(devices=4, overlap=True, replacement_threshold=0.05),
        dict(num_requests=60, qps=30.0, seed=31, mean_new_tokens=48),
    ),
    # prefix_cache section with actual hits/shared blocks.
    "prefix_shared": (
        dict(),
        dict(
            num_requests=60, qps=30.0, seed=23, mean_new_tokens=48,
            shared_prefix_tokens=32, prefix_groups=3,
        ),
    ),
    # preemption/recompute counters under on-demand growth.
    "ondemand_preempt": (
        dict(kv_policy="ondemand", reserve_gb=20.0, max_batch_size=256),
        dict(
            num_requests=120, qps=40.0, seed=25,
            mean_prompt_tokens=512, mean_new_tokens=256,
        ),
    ),
    # load shedding.
    "reject": (
        dict(admission="reject", max_batch_size=8),
        dict(num_requests=60, qps=60.0, seed=22, mean_new_tokens=32),
    ),
    # disaggregated prefill/decode + swap preemption: migration section and
    # the per-device role tags.
    "disagg_swap": (
        dict(
            devices=3, prefill_devices=1, decode_devices=2,
            kv_policy="ondemand", preempt_mode="swap",
        ),
        dict(num_requests=60, qps=40.0, seed=29, mean_new_tokens=48),
    ),
}

#: Schema entries no stock-policy run can produce (``stranded`` needs a
#: custom conservative scheduling policy that never admits); they stay in
#: the schema because the report *can* emit them.
CONDITIONAL_KEYS = frozenset({"stranded"})


def _collect_keys(obj: object, acc: set[str]) -> set[str]:
    if isinstance(obj, dict):
        for key, value in obj.items():
            acc.add(key)
            _collect_keys(value, acc)
    elif isinstance(obj, list):
        for value in obj:
            _collect_keys(value, acc)
    return acc


def _live_keys(name: str) -> set[str]:
    config_kwargs, workload_kwargs = SCENARIOS[name]
    engine = ServingEngine(
        MiLoBackend(), "mixtral-8x7b", EngineConfig(**config_kwargs)
    )
    report = engine.run(poisson_workload(**workload_kwargs))
    return _collect_keys(report.to_dict(), set())


@pytest.fixture(scope="module")
def live_key_union() -> set[str]:
    union: set[str] = set()
    for name in sorted(SCENARIOS):
        union |= _live_keys(name)
    return union


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_every_live_report_key_is_declared(scenario):
    undeclared = _live_keys(scenario) - REPORT_SCHEMA_KEYS
    assert not undeclared, (
        f"report keys {sorted(undeclared)} missing from REPORT_SCHEMA_KEYS; "
        f"the report_sha256 gate would drift silently"
    )


def test_schema_has_no_dead_keys(live_key_union):
    """Every schema entry (minus the documented conditionals) shows up in at
    least one live report — a stale entry would let RPT001 wave through a
    key nothing writes anymore."""
    dead = REPORT_SCHEMA_KEYS - live_key_union - CONDITIONAL_KEYS
    assert not dead, f"schema declares keys no scenario produces: {sorted(dead)}"


def test_conditional_keys_are_still_declared():
    assert CONDITIONAL_KEYS <= REPORT_SCHEMA_KEYS
