"""Tests for the paged KV-cache block manager and its memory accounting."""

import pytest

from repro.models import FULL_MODEL_SPECS
from repro.serving import BlockManager, KVCacheExhausted, blocks_for_budget, kv_block_bytes

MIXTRAL = FULL_MODEL_SPECS["mixtral-8x7b"]


class TestKVGeometry:
    def test_mixtral_kv_bytes_per_token(self):
        # 2 (K+V) * 32 layers * 8 kv heads * 128 head dim * 2 bytes = 128 KiB.
        assert MIXTRAL.kv_bytes_per_token == 131072

    def test_block_bytes_scale_with_block_size(self):
        assert kv_block_bytes(MIXTRAL, 16) == 16 * MIXTRAL.kv_bytes_per_token
        with pytest.raises(ValueError):
            kv_block_bytes(MIXTRAL, 0)

    def test_blocks_for_budget(self):
        one_block_gb = kv_block_bytes(MIXTRAL, 16) / 1024**3
        assert blocks_for_budget(MIXTRAL, 10 * one_block_gb, 16) == 10
        assert blocks_for_budget(MIXTRAL, 0.0, 16) == 0
        assert blocks_for_budget(MIXTRAL, -1.0, 16) == 0


class TestBlockManager:
    def test_blocks_needed_rounds_up(self):
        mgr = BlockManager(num_blocks=10, block_size=16)
        assert mgr.blocks_needed(1) == 1
        assert mgr.blocks_needed(16) == 1
        assert mgr.blocks_needed(17) == 2
        with pytest.raises(ValueError):
            mgr.blocks_needed(0)

    def test_allocate_and_free_roundtrip(self):
        mgr = BlockManager(num_blocks=10, block_size=16)
        taken = mgr.allocate(seq_id=1, num_tokens=40)  # 3 blocks
        assert taken == 3
        assert mgr.used_blocks == 3 and mgr.free_blocks == 7
        assert mgr.free(1) == 3
        assert mgr.used_blocks == 0 and mgr.free_blocks == 10

    def test_exhaustion_raises_typed_error(self):
        mgr = BlockManager(num_blocks=2, block_size=16)
        assert not mgr.can_allocate(33)
        with pytest.raises(KVCacheExhausted):
            mgr.allocate(seq_id=1, num_tokens=33)

    def test_double_allocate_and_unknown_free_raise(self):
        mgr = BlockManager(num_blocks=4, block_size=16)
        mgr.allocate(seq_id=1, num_tokens=16)
        with pytest.raises(KVCacheExhausted):
            mgr.allocate(seq_id=1, num_tokens=16)
        with pytest.raises(KVCacheExhausted):
            mgr.free(2)

    def test_leak_check(self):
        mgr = BlockManager(num_blocks=4, block_size=16)
        mgr.assert_no_leaks()
        mgr.allocate(seq_id=7, num_tokens=16)
        with pytest.raises(KVCacheExhausted, match="7"):
            mgr.assert_no_leaks()
        mgr.free(7)
        mgr.assert_no_leaks()

    def test_fits_at_all_vs_can_allocate(self):
        mgr = BlockManager(num_blocks=4, block_size=16)
        mgr.allocate(seq_id=1, num_tokens=48)  # 3 of 4 blocks
        assert mgr.fits_at_all(32)      # an empty pool could hold it
        assert not mgr.can_allocate(32)  # but not right now
        assert not mgr.fits_at_all(80)  # 5 blocks can never fit

    def test_max_sequences(self):
        mgr = BlockManager(num_blocks=12, block_size=16)
        assert mgr.max_sequences(48) == 4   # 3 blocks each
        assert mgr.max_sequences(17) == 6   # 2 blocks each
        assert mgr.max_sequences(1000) == 0

    def test_many_sequences_conserve_pool(self):
        mgr = BlockManager(num_blocks=100, block_size=8)
        for i in range(20):
            mgr.allocate(seq_id=i, num_tokens=8 * (1 + i % 3))
        assert mgr.used_blocks + mgr.free_blocks == mgr.num_blocks
        for i in range(20):
            mgr.free(i)
        assert mgr.free_blocks == 100
        assert mgr.outstanding_sequences == 0
