"""Tests for the paged KV-cache block manager and its memory accounting."""

import pytest

from repro.models import FULL_MODEL_SPECS
from repro.serving import BlockManager, KVCacheExhausted, blocks_for_budget, kv_block_bytes

MIXTRAL = FULL_MODEL_SPECS["mixtral-8x7b"]


class TestKVGeometry:
    def test_mixtral_kv_bytes_per_token(self):
        # 2 (K+V) * 32 layers * 8 kv heads * 128 head dim * 2 bytes = 128 KiB.
        assert MIXTRAL.kv_bytes_per_token == 131072

    def test_block_bytes_scale_with_block_size(self):
        assert kv_block_bytes(MIXTRAL, 16) == 16 * MIXTRAL.kv_bytes_per_token
        with pytest.raises(ValueError):
            kv_block_bytes(MIXTRAL, 0)

    def test_blocks_for_budget(self):
        one_block_gb = kv_block_bytes(MIXTRAL, 16) / 1024**3
        assert blocks_for_budget(MIXTRAL, 10 * one_block_gb, 16) == 10
        assert blocks_for_budget(MIXTRAL, 0.0, 16) == 0
        assert blocks_for_budget(MIXTRAL, -1.0, 16) == 0


class TestBlockManager:
    def test_blocks_needed_rounds_up(self):
        mgr = BlockManager(num_blocks=10, block_size=16)
        assert mgr.blocks_needed(1) == 1
        assert mgr.blocks_needed(16) == 1
        assert mgr.blocks_needed(17) == 2
        with pytest.raises(ValueError):
            mgr.blocks_needed(0)

    def test_allocate_and_free_roundtrip(self):
        mgr = BlockManager(num_blocks=10, block_size=16)
        taken = mgr.allocate(seq_id=1, num_tokens=40)  # 3 blocks
        assert taken == 3
        assert mgr.used_blocks == 3 and mgr.free_blocks == 7
        assert mgr.free(1) == 3
        assert mgr.used_blocks == 0 and mgr.free_blocks == 10

    def test_exhaustion_raises_typed_error(self):
        mgr = BlockManager(num_blocks=2, block_size=16)
        assert not mgr.can_allocate(33)
        with pytest.raises(KVCacheExhausted):
            mgr.allocate(seq_id=1, num_tokens=33)

    def test_double_allocate_and_unknown_free_raise(self):
        mgr = BlockManager(num_blocks=4, block_size=16)
        mgr.allocate(seq_id=1, num_tokens=16)
        with pytest.raises(KVCacheExhausted):
            mgr.allocate(seq_id=1, num_tokens=16)
        with pytest.raises(KVCacheExhausted):
            mgr.free(2)

    def test_leak_check(self):
        mgr = BlockManager(num_blocks=4, block_size=16)
        mgr.assert_no_leaks()
        mgr.allocate(seq_id=7, num_tokens=16)
        with pytest.raises(KVCacheExhausted, match="7"):
            mgr.assert_no_leaks()
        mgr.free(7)
        mgr.assert_no_leaks()

    def test_fits_at_all_vs_can_allocate(self):
        mgr = BlockManager(num_blocks=4, block_size=16)
        mgr.allocate(seq_id=1, num_tokens=48)  # 3 of 4 blocks
        assert mgr.fits_at_all(32)      # an empty pool could hold it
        assert not mgr.can_allocate(32)  # but not right now
        assert not mgr.fits_at_all(80)  # 5 blocks can never fit

    def test_max_sequences(self):
        mgr = BlockManager(num_blocks=12, block_size=16)
        assert mgr.max_sequences(48) == 4   # 3 blocks each
        assert mgr.max_sequences(17) == 6   # 2 blocks each
        assert mgr.max_sequences(1000) == 0

    def test_many_sequences_conserve_pool(self):
        mgr = BlockManager(num_blocks=100, block_size=8)
        for i in range(20):
            mgr.allocate(seq_id=i, num_tokens=8 * (1 + i % 3))
        assert mgr.used_blocks + mgr.free_blocks == mgr.num_blocks
        for i in range(20):
            mgr.free(i)
        assert mgr.free_blocks == 100
        assert mgr.outstanding_sequences == 0


class TestBlockIdentity:
    """Blocks are numbered, tabled per sequence, and partition the pool."""

    def test_block_tables_hold_distinct_ids(self):
        mgr = BlockManager(num_blocks=8, block_size=8)
        mgr.allocate(seq_id=1, num_tokens=24)  # 3 blocks
        mgr.allocate(seq_id=2, num_tokens=16)  # 2 blocks
        t1, t2 = mgr.block_table(1), mgr.block_table(2)
        assert len(t1) == 3 and len(t2) == 2
        assert len(set(t1) | set(t2)) == 5  # private allocations never alias
        assert all(0 <= b < 8 for b in t1 + t2)

    def test_grow_appends_to_the_table(self):
        mgr = BlockManager(num_blocks=8, block_size=8)
        mgr.allocate(seq_id=1, num_tokens=8)
        before = mgr.block_table(1)
        assert mgr.grow(1, 2) == 3
        after = mgr.block_table(1)
        assert after[: len(before)] == before  # existing mapping untouched
        mgr.check_invariants()

    def test_invariants_hold_after_every_operation(self):
        mgr = BlockManager(num_blocks=16, block_size=8)
        mgr.check_invariants()
        for i in range(4):
            mgr.allocate(seq_id=i, num_tokens=8 * (1 + i))
            mgr.check_invariants()
        mgr.grow(0, 2)
        mgr.check_invariants()
        for i in range(4):
            freed = mgr.free(i)
            assert freed > 0
            mgr.check_invariants()
        assert mgr.free_blocks == 16
        mgr.assert_no_leaks()

    def test_freed_ids_are_recycled(self):
        mgr = BlockManager(num_blocks=2, block_size=8)
        mgr.allocate(seq_id=1, num_tokens=16)
        mgr.free(1)
        mgr.allocate(seq_id=2, num_tokens=16)
        assert set(mgr.block_table(2)) == {0, 1}

    def test_pool_resize_rebuilds_free_list(self):
        mgr = BlockManager(num_blocks=4, block_size=8)
        mgr.num_blocks = 10
        assert mgr.free_blocks == 10
        mgr.allocate(seq_id=1, num_tokens=8)
        mgr.check_invariants()
        mgr.num_blocks = 5  # shrink around the single allocated block (id 0)
        assert mgr.free_blocks == 4
        mgr.check_invariants()
        with pytest.raises(KVCacheExhausted):
            mgr.num_blocks = 0  # would strand the allocated block
        mgr.free(1)
        mgr.num_blocks = 0
        assert mgr.free_blocks == 0


class TestPrefixSharing:
    """Shared prompt prefixes map the same physical blocks read-only."""

    def test_first_sharer_registers_then_second_hits(self):
        mgr = BlockManager(num_blocks=8, block_size=8)
        # 32 prefix tokens = 4 full blocks, prompt 40 -> 5 blocks total.
        fresh, hit_tokens = mgr.allocate_shared(1, 40, prefix_id=7, prefix_tokens=32)
        assert (fresh, hit_tokens) == (5, 0)
        fresh, hit_tokens = mgr.allocate_shared(2, 40, prefix_id=7, prefix_tokens=32)
        assert (fresh, hit_tokens) == (1, 32)  # only the private tail is new
        assert mgr.block_table(1)[:4] == mgr.block_table(2)[:4]
        assert mgr.block_table(1)[4] != mgr.block_table(2)[4]
        assert mgr.used_blocks == 6  # 4 shared + 2 private, not 10
        assert mgr.shared_blocks == 4
        assert mgr.shared_blocks_held(1) == 4
        assert mgr.prefix_hit_blocks == 4 and mgr.prefix_hit_tokens == 32
        mgr.check_invariants()

    def test_different_prefix_ids_do_not_alias(self):
        mgr = BlockManager(num_blocks=8, block_size=8)
        mgr.allocate_shared(1, 16, prefix_id=0, prefix_tokens=16)
        fresh, hit_tokens = mgr.allocate_shared(2, 16, prefix_id=1, prefix_tokens=16)
        assert (fresh, hit_tokens) == (2, 0)
        assert not set(mgr.block_table(1)) & set(mgr.block_table(2))

    def test_can_allocate_shared_accounts_resident_hits(self):
        mgr = BlockManager(num_blocks=6, block_size=8)
        mgr.allocate_shared(1, 40, prefix_id=3, prefix_tokens=32)  # all 5 blocks... 5 of 6
        # A plain allocation of 40 tokens (5 blocks) can no longer fit, but a
        # sharer needing only 1 fresh block can.
        assert not mgr.can_allocate(40)
        assert mgr.can_allocate_shared(40, prefix_id=3, prefix_tokens=32)
        assert not mgr.can_allocate_shared(40, prefix_id=9, prefix_tokens=32)

    def test_sharer_release_frees_only_private_blocks(self):
        mgr = BlockManager(num_blocks=8, block_size=8)
        mgr.allocate_shared(1, 40, prefix_id=0, prefix_tokens=32)
        mgr.allocate_shared(2, 40, prefix_id=0, prefix_tokens=32)
        assert mgr.free(2) == 1  # its private tail block only
        assert mgr.used_blocks == 5  # sharer 1 keeps prefix + tail
        assert mgr.shared_blocks == 0
        mgr.check_invariants()

    def test_index_evicted_with_last_holder(self):
        mgr = BlockManager(num_blocks=8, block_size=8)
        mgr.allocate_shared(1, 32, prefix_id=0, prefix_tokens=32)
        mgr.free(1)
        assert mgr.free_blocks == 8
        # The prefix no longer hits: its blocks went back to the free list.
        fresh, hit_tokens = mgr.allocate_shared(2, 32, prefix_id=0, prefix_tokens=32)
        assert (fresh, hit_tokens) == (4, 0)
        mgr.free(2)
        mgr.assert_no_leaks()

    def test_partial_tail_block_shared_only_on_request(self):
        mgr = BlockManager(num_blocks=8, block_size=8)
        # 20 prefix tokens: 2 full blocks + 1 partial.
        mgr.allocate_shared(1, 20, prefix_id=0, prefix_tokens=20, share_partial=True)
        fresh, hit_tokens = mgr.allocate_shared(
            2, 20, prefix_id=0, prefix_tokens=20, share_partial=True
        )
        assert fresh == 0
        assert hit_tokens == 20  # 2 full blocks (16) + 4 valid tokens of the tail
        assert mgr.block_table(1) == mgr.block_table(2)
        mgr.free(1)
        mgr.free(2)
        # Without share_partial the tail stays private per holder.
        mgr.allocate_shared(3, 20, prefix_id=1, prefix_tokens=20)
        fresh, hit_tokens = mgr.allocate_shared(4, 20, prefix_id=1, prefix_tokens=20)
        assert fresh == 1
        assert hit_tokens == 16
        assert mgr.block_table(3)[2] != mgr.block_table(4)[2]

    def test_exhaustion_raises_before_mutation(self):
        mgr = BlockManager(num_blocks=3, block_size=8)
        mgr.allocate(1, 24)
        with pytest.raises(KVCacheExhausted):
            mgr.allocate_shared(2, 16, prefix_id=0, prefix_tokens=16)
        assert mgr.outstanding_sequences == 1
        mgr.check_invariants()

    def test_leak_check_covers_sharing(self):
        mgr = BlockManager(num_blocks=8, block_size=8)
        mgr.allocate_shared(1, 32, prefix_id=0, prefix_tokens=32)
        mgr.allocate_shared(2, 32, prefix_id=0, prefix_tokens=32)
        with pytest.raises(KVCacheExhausted, match="1, 2"):
            mgr.assert_no_leaks()
        mgr.free(1)
        mgr.free(2)
        mgr.assert_no_leaks()


class TestCopyOnWrite:
    def shared_pair(self):
        mgr = BlockManager(num_blocks=8, block_size=8)
        # Whole prompt is the prefix; tail block holds 4 of its 8 slots.
        mgr.allocate_shared(1, 20, prefix_id=0, prefix_tokens=20, share_partial=True)
        mgr.allocate_shared(2, 20, prefix_id=0, prefix_tokens=20, share_partial=True)
        return mgr

    def test_fork_then_diverge_leaves_sharer_intact(self):
        mgr = self.shared_pair()
        sharer_table = mgr.block_table(1)
        assert mgr.cow_cost(2, 20) == 1  # tail block is shared: a write copies
        consumed = mgr.ensure_writable(2, 20)
        assert consumed == 1 and mgr.cow_copies == 1
        assert mgr.block_table(1) == sharer_table  # sharer untouched
        assert mgr.block_table(2)[:2] == sharer_table[:2]  # full blocks still shared
        assert mgr.block_table(2)[2] != sharer_table[2]  # writer owns a copy
        # The original tail stays in the index: a third sharer still hits it.
        fresh, hit_tokens = mgr.allocate_shared(
            3, 20, prefix_id=0, prefix_tokens=20, share_partial=True
        )
        assert fresh == 0 and hit_tokens == 20
        mgr.check_invariants()

    def test_sole_holder_unregisters_in_place(self):
        mgr = BlockManager(num_blocks=8, block_size=8)
        mgr.allocate_shared(1, 20, prefix_id=0, prefix_tokens=20, share_partial=True)
        table = mgr.block_table(1)
        assert mgr.cow_cost(1, 20) == 0  # refcount 1: no copy needed
        assert mgr.ensure_writable(1, 20) == 0
        assert mgr.block_table(1) == table  # mutated in place
        assert mgr.cow_copies == 0
        # The diverged block left the index: a new sharer misses the tail.
        fresh, hit_tokens = mgr.allocate_shared(
            2, 20, prefix_id=0, prefix_tokens=20, share_partial=True
        )
        assert fresh == 1 and hit_tokens == 16
        mgr.check_invariants()

    def test_private_blocks_need_no_cow(self):
        mgr = BlockManager(num_blocks=4, block_size=8)
        mgr.allocate(1, 20)
        assert mgr.cow_cost(1, 20) == 0
        assert mgr.ensure_writable(1, 20) == 0

    def test_write_beyond_table_is_loud(self):
        mgr = BlockManager(num_blocks=4, block_size=8)
        mgr.allocate(1, 8)
        with pytest.raises(KVCacheExhausted, match="grow before writing"):
            mgr.ensure_writable(1, 8)

    def test_stats_reset(self):
        mgr = self.shared_pair()
        mgr.ensure_writable(2, 20)
        assert mgr.prefix_hit_blocks > 0 and mgr.cow_copies == 1
        mgr.reset_stats()
        assert mgr.prefix_hit_blocks == 0 and mgr.prefix_hit_tokens == 0
        assert mgr.cow_copies == 0 and mgr.physical_allocs == 0
