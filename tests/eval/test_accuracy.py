"""Tests for task-accuracy evaluation."""

import pytest

from repro.core import ModelCompressor
from repro.data import TASK_SPECS, build_task
from repro.eval import evaluate_cloze, evaluate_multiple_choice, evaluate_task
from repro.models import build_model


class TestDispatch:
    def test_multiple_choice_dispatch(self, tiny_moe):
        task = build_task(tiny_moe, TASK_SPECS["piqa-syn"], num_items=12, seed=0)
        assert evaluate_task(tiny_moe, task) == evaluate_multiple_choice(tiny_moe, task)

    def test_cloze_dispatch(self, tiny_moe):
        task = build_task(tiny_moe, TASK_SPECS["lambada-syn"], num_items=12, seed=0)
        assert evaluate_task(tiny_moe, task) == evaluate_cloze(tiny_moe, task)

    def test_kind_mismatch_rejected(self, tiny_moe):
        mc = build_task(tiny_moe, TASK_SPECS["piqa-syn"], num_items=4, seed=0)
        cloze = build_task(tiny_moe, TASK_SPECS["lambada-syn"], num_items=4, seed=0)
        with pytest.raises(ValueError):
            evaluate_cloze(tiny_moe, mc)
        with pytest.raises(ValueError):
            evaluate_multiple_choice(tiny_moe, cloze)


class TestScores:
    def test_teacher_is_perfect_on_own_tasks(self, tiny_moe):
        for name in TASK_SPECS:
            task = build_task(tiny_moe, TASK_SPECS[name], num_items=16, seed=1)
            assert evaluate_task(tiny_moe, task) == 100.0

    def test_scores_are_percentages(self, tiny_moe):
        quantized = build_model("tiny-moe")
        quantized, _ = ModelCompressor(method="rtn", bits=3).compress(quantized)
        task = build_task(tiny_moe, TASK_SPECS["hellaswag-syn"], num_items=32, seed=2)
        score = evaluate_task(quantized, task)
        assert 0.0 <= score <= 100.0

    def test_extreme_quantization_degrades_accuracy(self):
        teacher = build_model("tiny-moe")
        task = build_task(teacher, TASK_SPECS["lambada-syn"], num_items=64, seed=3)
        quantized = build_model("tiny-moe")
        quantized, _ = ModelCompressor(method="rtn", bits=2).compress(quantized)
        assert evaluate_task(quantized, task) < 100.0

    def test_batch_size_does_not_change_result(self, tiny_moe):
        task = build_task(tiny_moe, TASK_SPECS["piqa-syn"], num_items=20, seed=4)
        assert evaluate_multiple_choice(tiny_moe, task, batch_size=3) == evaluate_multiple_choice(
            tiny_moe, task, batch_size=64
        )
