"""Tests for the evaluation harness and result rows."""

import numpy as np
import pytest

from repro.core import DenseRank, ModelCompressor
from repro.eval import EvaluationEnvironment, EvaluationHarness
from repro.models import build_model


@pytest.fixture(scope="module")
def environment():
    teacher = build_model("tiny-moe")
    return EvaluationEnvironment.from_teacher(
        teacher, num_sequences=6, seq_len=16, num_task_items=32, seed=0
    )


@pytest.fixture(scope="module")
def harness(environment):
    return EvaluationHarness(environment)


class TestEnvironment:
    def test_contains_corpus_and_all_tasks(self, environment):
        assert environment.corpus.num_sequences == 6
        assert len(environment.suite.names()) == 5


class TestHarness:
    def test_fp16_row_is_perfect_on_tasks(self, harness):
        teacher = build_model("tiny-moe")
        result = harness.evaluate(teacher, "fp16")
        assert result.zero_shot_average == 100.0
        assert all(v == 100.0 for v in result.task_scores.values())
        row = result.as_row()
        assert row["method"] == "fp16"
        assert "wikitext2_ppl" in row and "zero_shot_avg" in row

    def test_quantized_row_degrades(self, harness):
        teacher = build_model("tiny-moe")
        fp16 = harness.evaluate(teacher, "fp16")
        quantized = build_model("tiny-moe")
        quantized, _ = ModelCompressor(method="rtn", bits=3).compress(quantized)
        row = harness.evaluate(quantized, "rtn-int3")
        assert row.wikitext2_ppl > fp16.wikitext2_ppl
        assert row.zero_shot_average < 100.0
        assert row.memory_mb < fp16.memory_mb

    def test_task_subset_selection(self, harness):
        teacher = build_model("tiny-moe")
        result = harness.evaluate(teacher, "fp16", tasks=["piqa-syn"])
        assert set(result.task_scores) == {"piqa-syn"}

    def test_exclude_few_shot(self, harness):
        teacher = build_model("tiny-moe")
        result = harness.evaluate(teacher, "fp16", include_few_shot=False)
        assert "mmlu-syn" not in result.task_scores
        assert "triqa-syn" not in result.task_scores

    def test_compare_preserves_order(self, harness):
        models = {
            "fp16": build_model("tiny-moe"),
            "rtn": ModelCompressor(method="rtn", bits=3).compress(build_model("tiny-moe"))[0],
        }
        results = harness.compare(models, include_few_shot=False)
        assert [r.label for r in results] == ["fp16", "rtn"]

    def test_milo_improves_over_rtn(self, harness):
        rtn = ModelCompressor(method="rtn", bits=3).compress(build_model("tiny-moe"))[0]
        milo = ModelCompressor(method="milo", bits=3, rank_policy=DenseRank(8)).compress(
            build_model("tiny-moe")
        )[0]
        rtn_row = harness.evaluate(rtn, "rtn", include_few_shot=False)
        milo_row = harness.evaluate(milo, "milo", include_few_shot=False)
        assert milo_row.wikitext2_ppl < rtn_row.wikitext2_ppl
        assert milo_row.zero_shot_average >= rtn_row.zero_shot_average
