"""Tests for the perplexity evaluator."""

import numpy as np
import pytest

from repro.core import ModelCompressor
from repro.data import teacher_corpus
from repro.eval import perplexity, token_nll
from repro.models import build_model


class TestTokenNLL:
    def test_one_value_per_predicted_token(self, tiny_moe):
        tokens = np.random.default_rng(0).integers(0, 64, size=(3, 10))
        nll = token_nll(tiny_moe, tokens)
        assert nll.shape == (3 * 9,)
        assert np.all(nll >= 0)

    def test_requires_at_least_two_positions(self, tiny_moe):
        with pytest.raises(ValueError):
            token_nll(tiny_moe, np.zeros((2, 1), dtype=int))


class TestPerplexity:
    def test_accepts_corpus_or_array(self, tiny_moe):
        corpus = teacher_corpus(tiny_moe, num_sequences=4, seq_len=12, seed=0)
        assert perplexity(tiny_moe, corpus) == pytest.approx(
            perplexity(tiny_moe, corpus.tokens)
        )

    def test_bounded_by_vocab_size_for_uniform_model(self, tiny_moe):
        corpus = teacher_corpus(tiny_moe, num_sequences=4, seq_len=12, seed=1)
        assert 1.0 < perplexity(tiny_moe, corpus) < tiny_moe.config.vocab_size * 1.5

    def test_empty_corpus_rejected(self, tiny_moe):
        with pytest.raises(ValueError):
            perplexity(tiny_moe, np.zeros((0, 8), dtype=int))

    def test_quantization_increases_perplexity(self):
        teacher = build_model("tiny-moe")
        corpus = teacher_corpus(teacher, num_sequences=8, seq_len=16, seed=2)
        baseline = perplexity(teacher, corpus)
        quantized = build_model("tiny-moe")
        quantized, _ = ModelCompressor(method="rtn", bits=3).compress(quantized)
        assert perplexity(quantized, corpus) > baseline
