"""Tests for the plain-text table formatter."""

from repro.eval import format_rows, format_table


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        text = format_table(["a", "bbb"], [[1, 2.34567], [10, 3.0]], precision=2)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "2.35" in text
        assert len(lines) == 4

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_string_cells_untouched(self):
        text = format_table(["method"], [["milo-s1"]])
        assert "milo-s1" in text


class TestFormatRows:
    def test_dict_rows(self):
        rows = [{"method": "rtn", "ppl": 4.81}, {"method": "milo", "ppl": 4.03}]
        text = format_rows(rows, precision=2)
        assert "method" in text and "4.03" in text

    def test_empty_rows_returns_title(self):
        assert format_rows([], title="nothing") == "nothing"
