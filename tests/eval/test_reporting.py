"""Tests for the plain-text table formatter."""

from repro.eval import format_rows, format_table


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        text = format_table(["a", "bbb"], [[1, 2.34567], [10, 3.0]], precision=2)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "2.35" in text
        assert len(lines) == 4

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_string_cells_untouched(self):
        text = format_table(["method"], [["milo-s1"]])
        assert "milo-s1" in text


class TestFormatRows:
    def test_dict_rows(self):
        rows = [{"method": "rtn", "ppl": 4.81}, {"method": "milo", "ppl": 4.03}]
        text = format_rows(rows, precision=2)
        assert "method" in text and "4.03" in text

    def test_empty_rows_returns_title(self):
        assert format_rows([], title="nothing") == "nothing"

    def test_keys_unioned_in_first_seen_order(self):
        """A key appearing only in later rows still gets a column."""
        rows = [{"a": 1}, {"a": 2, "b": 3}, {"c": 4}]
        text = format_rows(rows)
        header = text.splitlines()[0].split()
        assert header == ["a", "b", "c"]
        # The first row simply shows empty cells for the later keys.
        assert "3" in text and "4" in text

    def test_missing_cells_render_empty(self):
        rows = [{"x": 1}, {"y": 2}]
        lines = format_rows(rows).splitlines()
        assert lines[0].split() == ["x", "y"]
        assert lines[2].split() == ["1"]
        assert lines[3].split() == ["2"]
