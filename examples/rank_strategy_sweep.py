"""Rank-strategy sweep under a fixed compensator memory budget (Table 4 left block).

Run with::

    python examples/rank_strategy_sweep.py

Given a compensator memory budget, this example compares how the three
model-structure strategies spend it — Uniform (everywhere), Dense (attention
and shared experts only), Sparse (routed experts only) — and reports the
resulting perplexity and accuracy, demonstrating that dense layers are the
most rank-sensitive place to put compensation.
"""

from repro.core import (
    DenseRank,
    MiLoConfig,
    ModelCompressor,
    SparseRank,
    UniformRank,
    build_weight_entries,
    total_compensator_memory,
    uniform_rank_for_budget,
)
from repro.eval import EvaluationEnvironment, EvaluationHarness, format_rows
from repro.models import build_model


def main(model_name: str = "mixtral-mini", dense_rank: int = 8) -> None:
    teacher = build_model(model_name)
    environment = EvaluationEnvironment.from_teacher(
        teacher, num_sequences=16, seq_len=24, num_task_items=96, seed=0
    )
    harness = EvaluationHarness(environment)

    # The budget is whatever Dense-{dense_rank} costs (the paper uses 200 MB).
    entries = build_weight_entries(build_model(model_name))
    budget = total_compensator_memory(entries, DenseRank(dense_rank).assign(entries), bits=3)
    uniform_rank = max(1, uniform_rank_for_budget(entries, budget, bits=3, scope="all"))
    sparse_rank = max(1, uniform_rank_for_budget(entries, budget, bits=3, scope="sparse"))
    print(f"Compensator budget: {budget / 1024:.1f} KiB "
          f"(= Dense-{dense_rank}; Uniform-{uniform_rank}; Sparse-{sparse_rank})")

    policies = {
        f"Uniform-{uniform_rank}": UniformRank(uniform_rank),
        f"Dense-{dense_rank}": DenseRank(dense_rank),
        f"Sparse-{sparse_rank}": SparseRank(sparse_rank),
    }
    rows = []
    for label, policy in policies.items():
        model = build_model(model_name)
        model, report = ModelCompressor(
            method="milo", bits=3, rank_policy=policy, milo_config=MiLoConfig(max_iterations=1)
        ).compress(model)
        result = harness.evaluate(model, label, include_few_shot=False)
        rows.append(
            {
                "strategy": label,
                "compensator_kb": round(report.compensator_bytes / 1024, 1),
                "wikitext2_ppl": round(result.wikitext2_ppl, 4),
                "zero_shot_avg": round(result.zero_shot_average, 2),
            }
        )
    print(format_rows(rows, title=f"Rank strategies under a fixed budget ({model_name})"))
    best = min(rows, key=lambda r: r["wikitext2_ppl"])
    print(f"\nBest strategy under this budget: {best['strategy']}")


if __name__ == "__main__":
    main()
