"""Quickstart: quantize a Mixtral-style MoE with MiLo and compare against HQQ.

Run with::

    python examples/quickstart.py

This walks the minimal end-to-end flow of the library:

1. build the FP16 teacher model (a synthetic Mixtral-style mini MoE),
2. freeze an evaluation environment (teacher-consistent corpus + task suite),
3. compress fresh copies with HQQ (the calibration-free INT3 baseline) and
   with MiLo (INT3 + mixture of low-rank compensators, strategy s1),
4. print a Table-3-style comparison.
"""

from repro.core import ModelCompressor, build_strategy
from repro.eval import EvaluationEnvironment, EvaluationHarness, format_rows
from repro.models import build_model


def main() -> None:
    model_name = "mixtral-mini"
    teacher = build_model(model_name)
    print(f"Built {model_name}: {teacher.num_parameters():,} parameters, "
          f"{teacher.memory_bytes() / 2**20:.2f} MiB in FP16")

    environment = EvaluationEnvironment.from_teacher(
        teacher, num_sequences=16, seq_len=24, num_task_items=96, seed=0
    )
    harness = EvaluationHarness(environment)

    rows = [harness.evaluate(teacher, "FP16").as_row()]

    # Calibration-free INT3 baseline (HQQ).
    hqq_model = build_model(model_name)
    hqq_model, hqq_report = ModelCompressor(method="hqq", bits=3, group_size=64).compress(hqq_model)
    row = harness.evaluate(hqq_model, "HQQ INT3").as_row()
    row["quant_time_s"] = round(hqq_report.quant_time_s, 2)
    rows.append(row)

    # MiLo: INT3 + mixture of low-rank compensators (paper strategy s1).
    milo_model = build_model(model_name)
    policy = build_strategy("mixtral-s1", milo_model.config)
    milo_model, milo_report = ModelCompressor(
        method="milo", bits=3, group_size=64, rank_policy=policy
    ).compress(milo_model)
    row = harness.evaluate(milo_model, "MiLo-s1 INT3").as_row()
    row["quant_time_s"] = round(milo_report.quant_time_s, 2)
    rows.append(row)

    print()
    print(format_rows(rows, title="Quickstart: FP16 vs HQQ vs MiLo (W3A16, group size 64)"))
    print()
    print(f"MiLo rank strategy: {policy.describe()}")
    print(f"Compensator memory: {milo_report.compensator_bytes / 1024:.1f} KiB "
          f"({100 * milo_report.compensator_bytes / milo_report.memory_bytes:.1f}% of the compressed model)")


if __name__ == "__main__":
    main()
