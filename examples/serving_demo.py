"""Serving study: memory savings as serving capacity.

Run with::

    python examples/serving_demo.py

Goes beyond the paper's Table 7 (single-step decode latency) by driving the
same backend latency models as an online serving system
(:mod:`repro.serving`): continuous batching, a paged KV-cache over the VRAM
the weights leave free, and a deterministic discrete-event clock.

1. KV-capacity comparison: how many concurrent 192-token sequences each
   backend sustains on a 40 GB A100 (FP16 OOMs outright on Mixtral);
2. one Poisson experiment per backend at the same offered load, reporting
   p50/p95 TTFT, TPOT and sustained QPS;
3. a load sweep on the MiLo backend showing TTFT degrading gracefully as
   offered QPS approaches saturation;
4. a side-by-side of the two KV allocation policies on a KV-bound workload:
   full-extent reservation (deterministic, never preempts) vs on-demand
   growth (vLLM-style: packs more concurrent sequences into the same pool,
   preempting and recomputing the lowest-precedence sequence when it runs
   dry), with and without Sarathi-style chunked prefill;
5. multi-GPU expert-parallel serving (``milo serve --devices N
   --placement {balanced,frequency}``): the KV block pool is sharded into
   one per-device pool (each sequence pinned to its least-loaded home
   device) and the routed experts placed across devices; under the paper's
   Fig. 3 routing skew the iteration cost is the *max* over per-device
   costs, so frequency-aware placement beats round-robin.  The JSON report
   gains a ``cluster`` section::

       "cluster": {
         "devices": 4,
         "placement": "frequency",
         "straggler_ratio": 1.08,        # slowest device vs device mean
         "alltoall_tokens": 29906.2,     # routed tokens dispatched remotely
         "per_device": [
           {"device": "gpu0", "experts": 2, "expert_load_share": 0.28,
            "kv_blocks": 7687, "kv_peak_used_blocks": 512,
            "kv_utilization_peak": 0.066},
           ...
         ]
       }

   (absent with ``--devices 1``, whose report stays byte-identical to the
   single-device engine);
6. overlap-aware layered serving (``milo serve --overlap
   --replacement-threshold TV``): the iteration cost decomposes per MoE
   layer — each layer gets its own frequency-aware expert placement
   (Fig. 3 skew differs by layer) and its all-to-all dispatch overlaps
   with the next layer's compute, scaled by the device's
   ``overlap_efficiency``.  With a replacement threshold the engine also
   re-packs layers whose measured routing drifts from the offline
   profile, paying an expert-weight migration stall over the
   interconnect.  The JSON report gains an ``overlap`` section::

       "overlap": {
         "efficiency": 0.85,
         "hidden_comm_s": 12.4,     # all-to-all seconds hidden under compute
         "overlap_ratio": 0.87,     # hidden / total communication
         "replacements": 1,         # dynamic re-placements triggered
         "migration_s": 0.05        # clock charged for expert migration
       }

7. deterministic observability (``milo serve --trace-events
   --metrics-out`` / ``milo analyze``): a run with telemetry attached —
   :class:`~repro.serving.telemetry.Tracer` lifecycle spans plus a
   :class:`~repro.serving.telemetry.MetricsRegistry` sampling on the
   simulated clock — produces the byte-identical report, a
   Perfetto-loadable Chrome trace, and an
   :func:`~repro.serving.telemetry.analyze_trace` summary whose latency
   numbers reconcile with the report float-for-float (phase breakdown,
   per-device busy attribution, straggler ratio, KV pressure).
8. disaggregated prefill/decode serving (``milo serve --disagg P:D
   --preempt-mode {recompute,swap}``): the device group splits into a
   prefill pool and a decode pool; the iteration that completes a
   request's prefill hands its KV blocks to the least-loaded decode
   device, priced per block over the interconnect, and a load-triggered
   hook rebalances the decode pool.  ``--preempt-mode swap`` turns
   preemption into swap-to-host — the victim keeps its prefill progress
   and is restored over ``DeviceSpec.host_bandwidth`` on re-admission,
   with the recompute-equivalent cost reported alongside.  The JSON
   report gains a ``migration`` section::

       "migration": {
         "prefill_devices": 1, "decode_devices": 2,
         "handoffs": 33, "handoff_blocks": 231, "handoff_s": 0.0022,
         "rebalances": 4, "rebalanced_blocks": 45, "rebalance_s": 0.0004,
         "swaps": 74, "swapped_blocks": 1184, "swap_in_s": 0.0335,
         "recompute_equivalent_s": 2.011   # what recompute would have cost
       }
"""

from repro.analysis.expert_frequency import (
    fig3_layer_frequencies,
    fig3_reference_frequencies,
)
from repro.eval import format_rows
from repro.runtime import OutOfMemoryError
from repro.runtime.backends import (
    GPTQ3bitBackend,
    MarlinBackend,
    MiLoBackend,
    PyTorchFP16Backend,
)
from repro.serving import EngineConfig, ServingEngine, poisson_workload

BACKENDS = {
    "pytorch-fp16": PyTorchFP16Backend,
    "gptq3bit": GPTQ3bitBackend,
    "marlin": lambda: MarlinBackend(serve_asymmetric_model=True),
    "milo": MiLoBackend,
}
SEQ_TOKENS = 192  # 128 prompt + 64 decode


def kv_capacity() -> None:
    print("== 1. Concurrent-sequence capacity (Mixtral-8x7B, A100-40GB) ==")
    rows = []
    for name, factory in BACKENDS.items():
        config = EngineConfig(max_batch_size=100_000)  # let KV capacity bind
        try:
            engine = ServingEngine(factory(), "mixtral-8x7b", config)
            rows.append(
                {
                    "backend": name,
                    "kv_blocks": engine.block_manager.num_blocks,
                    f"max batch @ {SEQ_TOKENS} tok": engine.max_batch_size(SEQ_TOKENS),
                }
            )
        except OutOfMemoryError as exc:
            rows.append(
                {
                    "backend": name,
                    "kv_blocks": f"OOM (+{exc.deficit_gb:.0f} GB)",
                    f"max batch @ {SEQ_TOKENS} tok": 0,
                }
            )
    print(format_rows(rows))


def serve_comparison() -> None:
    print("\n== 2. Poisson workload, 120 requests @ 6 QPS (Mixtral-8x7B) ==")
    workload = poisson_workload(120, qps=6.0, seed=0)
    rows = []
    for name, factory in BACKENDS.items():
        try:
            report = ServingEngine(factory(), "mixtral-8x7b").run(workload)
        except OutOfMemoryError:
            rows.append({"backend": name, "qps": "OOM", "ttft_p50_ms": "-",
                         "ttft_p95_ms": "-", "tpot_p50_ms": "-", "peak_batch": "-"})
            continue
        rows.append(
            {
                "backend": name,
                "qps": round(report.sustained_qps, 2),
                "ttft_p50_ms": round(report.ttft["p50"] * 1e3, 1),
                "ttft_p95_ms": round(report.ttft["p95"] * 1e3, 1),
                "tpot_p50_ms": round(report.tpot["p50"] * 1e3, 2),
                "peak_batch": report.peak_batch,
            }
        )
    print(format_rows(rows))


def load_sweep() -> None:
    print("\n== 3. MiLo backend under increasing offered load ==")
    rows = []
    for qps in (2.0, 8.0, 32.0, 64.0):
        report = ServingEngine(MiLoBackend(), "mixtral-8x7b").run(
            poisson_workload(150, qps=qps, seed=0)
        )
        rows.append(
            {
                "offered_qps": qps,
                "sustained_qps": round(report.sustained_qps, 2),
                "ttft_p95_ms": round(report.ttft["p95"] * 1e3, 1),
                "tpot_p95_ms": round(report.tpot["p95"] * 1e3, 2),
                "peak_batch": report.peak_batch,
                "mean_batch_tokens": round(report.mean_batch_tokens, 1),
            }
        )
    print(format_rows(rows))


def policy_comparison() -> None:
    print("\n== 4. KV allocation policies on a KV-bound workload (MiLo) ==")
    # A 17 GB activation/workspace reserve leaves a tight KV pool on the same
    # 40 GB device, so the allocation policy decides how many sequences run.
    workload = poisson_workload(
        150, qps=16.0, seed=0, mean_prompt_tokens=128, mean_new_tokens=256, length_jitter=0.0
    )
    rows = []
    for policy in ("reserve", "ondemand"):
        for chunk in (None, 64):
            config = EngineConfig(
                max_batch_size=100_000, kv_policy=policy, prefill_chunk=chunk, reserve_gb=17.0
            )
            report = ServingEngine(MiLoBackend(), "mixtral-8x7b", config).run(workload)
            rows.append(
                {
                    "kv_policy": policy,
                    "prefill_chunk": chunk or "-",
                    "peak_batch": report.peak_batch,
                    "qps": round(report.sustained_qps, 2),
                    "ttft_p50_s": round(report.ttft["p50"], 2),
                    "preemptions": report.preemptions,
                    "recomputed_tok": report.recomputed_tokens,
                    "kv_util_peak": round(report.kv_utilization_peak, 3),
                }
            )
    print(format_rows(rows))


def cluster_comparison() -> None:
    print("\n== 5. Expert-parallel scaling under Fig. 3 routing skew (MiLo) ==")
    # DeepSeek-grade skew (11.7x max/min) on Mixtral's 8 experts: hot experts
    # make whichever device hosts them the per-iteration straggler.
    freqs = tuple(fig3_reference_frequencies(8, imbalance_ratio=11.7))
    workload = poisson_workload(
        150, qps=24.0, seed=0, mean_prompt_tokens=128, mean_new_tokens=192, length_jitter=0.0
    )
    rows = []
    for devices in (1, 2, 4):
        for placement in ("balanced", "frequency"):
            if devices == 1 and placement == "frequency":
                continue  # placement is moot on one device
            config = EngineConfig(
                max_batch_size=100_000, kv_policy="ondemand", reserve_gb=17.0,
                devices=devices, placement=placement, expert_frequencies=freqs,
            )
            report = ServingEngine(MiLoBackend(), "mixtral-8x7b", config).run(workload)
            cluster = report.to_dict().get("cluster")
            rows.append(
                {
                    "devices": devices,
                    "placement": placement if devices > 1 else "-",
                    "qps": round(report.sustained_qps, 2),
                    "ttft_p50_s": round(report.ttft["p50"], 2),
                    "straggler": round(cluster["straggler_ratio"], 3) if cluster else 1.0,
                    "alltoall_tok": int(cluster["alltoall_tokens"]) if cluster else 0,
                    "experts/dev": (
                        "/".join(str(p["experts"]) for p in cluster["per_device"])
                        if cluster
                        else "8"
                    ),
                }
            )
    print(format_rows(rows))


def overlap_comparison() -> None:
    print("\n== 6. Serial vs overlap-aware layered cost model (MiLo, 4 dev) ==")
    # Same offered load as section 5; the overlap rows add per-layer
    # placements (Fig. 3 skew varies by layer), communication hidden under
    # the next layer's compute, and drift-triggered re-placement.
    freqs = tuple(fig3_reference_frequencies(8, imbalance_ratio=11.7))
    layer_rows = tuple(tuple(row) for row in fig3_layer_frequencies(32, 8))
    workload = poisson_workload(
        150, qps=24.0, seed=0, mean_prompt_tokens=128, mean_new_tokens=192, length_jitter=0.0
    )
    rows = []
    for mode in ("serial", "overlap"):
        config = EngineConfig(
            max_batch_size=100_000, kv_policy="ondemand", reserve_gb=17.0,
            devices=4, placement="frequency", expert_frequencies=freqs,
            **(
                dict(
                    overlap=True,
                    layer_frequencies=layer_rows,
                    replacement_threshold=0.1,
                )
                if mode == "overlap"
                else {}
            ),
        )
        report = ServingEngine(MiLoBackend(), "mixtral-8x7b", config).run(workload)
        as_dict = report.to_dict()
        overlap = as_dict.get("overlap")
        rows.append(
            {
                "mode": mode,
                "qps": round(report.sustained_qps, 2),
                "sim_time_s": round(report.sim_time_s, 2),
                "straggler": round(as_dict["cluster"]["straggler_ratio"], 3),
                "overlap_ratio": round(overlap["overlap_ratio"], 3) if overlap else "-",
                "hidden_ms": round(overlap["hidden_comm_s"] * 1e3, 1) if overlap else "-",
                "repl": overlap["replacements"] if overlap else "-",
            }
        )
    print(format_rows(rows))


def telemetry_tour() -> None:
    print("\n== 7. Deterministic observability (MiLo, 4 dev, overlap) ==")
    from repro.serving import MetricsRegistry, Tracer, analyze_trace

    workload = poisson_workload(num_requests=120, qps=20.0, seed=11)
    config = EngineConfig(devices=4, overlap=True)
    engine = ServingEngine(MiLoBackend(), "mixtral-8x7b", config)
    tracer, metrics = Tracer(), MetricsRegistry(interval=0.5)
    engine.enable_telemetry(tracer=tracer, metrics=metrics)
    report = engine.run(workload)
    summary = analyze_trace(tracer.events, metrics.samples, tracer.meta)

    kinds: dict[str, int] = {}
    for event in tracer.events:
        kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
    print(f"events: {sum(kinds.values())} "
          f"({', '.join(f'{k}={v}' for k, v in sorted(kinds.items()))})")
    print(f"metrics samples: {len(metrics.samples)} @ 0.5 sim-s interval")
    phases = summary["phases"]
    print("phase shares: " + "  ".join(
        f"{name}={phases[name]['share']:.1%}"
        for name in ("queued", "prefill", "decode")
    ))
    print("device busy: " + "  ".join(
        f"{row['device']}={row['busy_frac']:.1%}" for row in summary["devices"]
    ))
    # The analyzer's latency summaries are the report's, float for float.
    assert summary["ttft_s"] == report.to_dict()["ttft_s"]
    print(f"analyze ttft_s == report ttft_s: {summary['ttft_s']}")
    print(f"straggler ratio: {summary['straggler']['ratio']:.4f}  "
          f"kv peak utilization: {summary['kv']['peak_utilization']:.1%}")


def disagg_comparison() -> None:
    print("\n== 8. Disaggregated prefill/decode + swap preemption (MiLo) ==")
    workload_kwargs = dict(
        num_requests=40, qps=60.0, seed=13, mean_prompt_tokens=96,
        mean_new_tokens=96,
    )

    def run(label: str, **config_kwargs: object) -> dict:
        config = EngineConfig(
            devices=4, kv_policy="ondemand", block_size=8,
            max_batch_size=1000, **config_kwargs,  # type: ignore[arg-type]
        )
        engine = ServingEngine(MiLoBackend(), "mixtral-8x7b", config)
        # Shrink the pools so preemption pressure is real at demo scale.
        for pool in engine.block_manager.pools:
            pool.num_blocks = 40
        report = engine.run(poisson_workload(**workload_kwargs))
        out = report.to_dict()
        row = {
            "config": label,
            "sim_s": round(report.sim_time_s, 2),
            "qps": round(report.sustained_qps, 2),
            "preempt": report.preemptions,
        }
        migration = out.get("migration", {})
        row["handoffs"] = migration.get("handoffs", 0)
        row["swap_in_s"] = round(migration.get("swap_in_s", 0.0), 4)
        row["recompute_eq_s"] = round(
            migration.get("recompute_equivalent_s", 0.0), 3
        )
        return row

    rows = [
        run("colocated 4dev"),
        run("disagg 1:3", prefill_devices=1, decode_devices=3),
        run("disagg 2:2", prefill_devices=2, decode_devices=2),
        run("disagg 1:3 + swap", prefill_devices=1, decode_devices=3,
            preempt_mode="swap"),
    ]
    print(format_rows(rows))
    print("swap resumes for ~1/50th of what recompute would cost here — the "
          "migration section prices both so the tradeoff is explicit.")


if __name__ == "__main__":
    kv_capacity()
    serve_comparison()
    load_sweep()
    policy_comparison()
    cluster_comparison()
    overlap_comparison()
    telemetry_tour()
    disagg_comparison()
