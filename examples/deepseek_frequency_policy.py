"""Adaptive rank selection on a fine-grained MoE (DeepSeek-style).

Run with::

    python examples/deepseek_frequency_policy.py

This example shows the two signals MiLo's adaptive policies consume on a
fine-grained MoE with imbalanced routing:

1. profile expert activation frequencies (the paper's Fig. 3 heatmap data),
2. inspect the per-layer-kind kurtosis contrast (Table 2),
3. compare three ways of spending the same average sparse rank —
   Uniform vs Kurtosis vs Frequency — on top of a fixed dense rank
   (the paper's Table 4 right-hand block).
"""

from repro.analysis import kurtosis_by_kind, profile_expert_frequency
from repro.core import (
    CompositeRankPolicy,
    DenseRank,
    FrequencyRank,
    KurtosisRank,
    MiLoConfig,
    ModelCompressor,
    UniformRank,
)
from repro.eval import EvaluationEnvironment, EvaluationHarness, format_rows
from repro.models import build_model


def main() -> None:
    model_name = "deepseek-moe-mini"
    teacher = build_model(model_name)

    print("== Expert activation frequencies (Fig. 3) ==")
    profile = profile_expert_frequency(teacher, num_tokens=4096, seed=0)
    for layer, freq in sorted(profile.frequencies.items()):
        print(f"layer {layer}: max/min activation ratio = {profile.imbalance_ratio(layer):6.1f}, "
              f"most popular expert carries {100 * freq.max():.1f}% of the routed tokens")
    print(f"model-wide coefficient of variation: {profile.coefficient_of_variation():.2f}")

    print("\n== Kurtosis by layer class (Table 2) ==")
    for kind, value in sorted(kurtosis_by_kind(teacher).items()):
        print(f"  {kind:15s} {value:+.3f}")

    print("\n== Sparse-layer rank policies at equal average rank (Table 4) ==")
    environment = EvaluationEnvironment.from_teacher(
        teacher, num_sequences=16, seq_len=24, num_task_items=96, seed=0
    )
    harness = EvaluationHarness(environment)

    dense_rank, sparse_avg = 16, 1
    policies = {
        "Dense only": DenseRank(dense_rank),
        "Dense + Uniform": CompositeRankPolicy([DenseRank(dense_rank), UniformRank(sparse_avg, scope="sparse")]),
        "Dense + Kurtosis": CompositeRankPolicy([DenseRank(dense_rank), KurtosisRank(sparse_avg)]),
        "Dense + Frequency": CompositeRankPolicy([DenseRank(dense_rank), FrequencyRank(sparse_avg)]),
    }
    rows = []
    for label, policy in policies.items():
        model = build_model(model_name)
        model, report = ModelCompressor(
            method="milo", bits=3, rank_policy=policy, milo_config=MiLoConfig(max_iterations=1)
        ).compress(model)
        result = harness.evaluate(model, label, include_few_shot=False)
        rows.append(
            {
                "policy": label,
                "compensator_kb": round(report.compensator_bytes / 1024, 1),
                "wikitext2_ppl": round(result.wikitext2_ppl, 4),
                "zero_shot_avg": round(result.zero_shot_average, 2),
            }
        )
    print(format_rows(rows, title="Rank policies on deepseek-moe-mini (1 MiLo iteration)"))


if __name__ == "__main__":
    main()
