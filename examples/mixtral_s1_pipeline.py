"""Full Mixtral-s1 pipeline, mirroring the paper artifact's ``Mixtral_s1.sh``.

Run with::

    python examples/mixtral_s1_pipeline.py [output.json]

Steps (the same stages as the artifact script):

1. MiLo quantization of the Mixtral-style model with the s1 strategy
   (Dense-512 + Kurtosis-16 at paper scale), reporting quantization time and
   compressed memory;
2. WikiText-2-style perplexity evaluation;
3. zero-shot task evaluation (hellaswag-syn / lambada-syn / piqa-syn);
4. few-shot task evaluation (mmlu-syn / triqa-syn);
5. results written to a JSON file, like the artifact's ``eval_result.json``.
"""

import json
import sys

from repro.core import ModelCompressor, build_strategy
from repro.data import FEW_SHOT_TASKS, ZERO_SHOT_TASKS
from repro.eval import EvaluationEnvironment, EvaluationHarness
from repro.models import FULL_MODEL_SPECS, build_model
from repro.quant import project_full_model_time
from repro.runtime import quantized_model_memory_gb, strategy_compensator_gb


def main(output_path: str = "mixtral_s1_results.json") -> None:
    model_name, strategy_name = "mixtral-mini", "mixtral-s1"
    teacher = build_model(model_name)

    print("== Stage 0: evaluation environment (teacher-consistent) ==")
    environment = EvaluationEnvironment.from_teacher(
        teacher, num_sequences=24, seq_len=32, num_task_items=128, seed=0
    )
    harness = EvaluationHarness(environment)
    fp16 = harness.evaluate(teacher, "fp16")
    print(f"FP16 perplexity: {fp16.wikitext2_ppl:.4f}")

    print("\n== Stage 1: MiLo quantization (strategy s1) ==")
    model = build_model(model_name)
    policy = build_strategy(strategy_name, model.config)
    compressor = ModelCompressor(method="milo", bits=3, group_size=64, rank_policy=policy)
    model, report = compressor.compress(model)
    print(f"Strategy: {policy.describe()}")
    print(f"Quantization time (mini model, measured): {report.quant_time_s:.2f} s")
    print(f"Projected full-scale quantization time:  {project_full_model_time('milo', 46.7):.0f} s")
    print(f"Compressed memory: {report.memory_bytes / 2**20:.2f} MiB "
          f"({100 * report.compression_ratio:.1f}% of FP16)")

    spec = FULL_MODEL_SPECS["mixtral-8x7b"]
    full_gb = quantized_model_memory_gb(spec, bits=3, group_size=64) + strategy_compensator_gb(
        spec, strategy_name
    )
    print(f"Projected full-scale Mixtral-8x7B memory: {full_gb:.2f} GB (paper: 20.8 GB)")

    print("\n== Stage 2: WikiText-2-style perplexity ==")
    result = harness.evaluate(model, "milo-s1", tasks=[])
    print(f"MiLo-s1 perplexity: {result.wikitext2_ppl:.4f}")

    print("\n== Stage 3: zero-shot tasks ==")
    zero_shot = harness.evaluate(model, "milo-s1", tasks=list(ZERO_SHOT_TASKS))
    for task, score in zero_shot.task_scores.items():
        print(f"  {task:15s} {score:6.2f}")
    print(f"  {'average':15s} {zero_shot.zero_shot_average:6.2f}")

    print("\n== Stage 4: few-shot tasks ==")
    few_shot = harness.evaluate(model, "milo-s1", tasks=list(FEW_SHOT_TASKS))
    for task, score in few_shot.task_scores.items():
        print(f"  {task:15s} {score:6.2f}")

    results = {
        "model": model_name,
        "strategy": strategy_name,
        "fp16_perplexity": fp16.wikitext2_ppl,
        "milo_perplexity": result.wikitext2_ppl,
        "zero_shot": zero_shot.task_scores,
        "zero_shot_average": zero_shot.zero_shot_average,
        "few_shot": few_shot.task_scores,
        "quant_time_s": report.quant_time_s,
        "memory_mb": report.memory_bytes / 2**20,
        "projected_fullscale_memory_gb": full_gb,
        "ranks": report.ranks,
    }
    with open(output_path, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"\nResults written to {output_path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mixtral_s1_results.json")
