"""Kernel study: INT3 packing correctness, GEMM throughput, and the ablation.

Run with::

    python examples/kernel_throughput.py

Mirrors the paper artifact's kernel scripts:

1. functional check of the zero-bit-waste INT3 packing and the packed W3A16
   GEMM against an FP reference (Appendix D's correctness criterion);
2. GEMM throughput model for the Appendix C MLP shapes across backends and
   batch sizes (Fig. 9);
3. end-to-end backend latency for Mixtral-8x7B on a modeled A100-40GB
   (Table 7), including the PyTorch OOM and the GPTQ batch-1 limitation;
4. the kernel-optimization ablation (Fig. 10).
"""

import numpy as np

from repro.eval import format_rows
from repro.kernels import (
    MiLoKernelSim,
    UnsupportedBatchError,
    default_backends,
    packed_gemm_w3a16,
    quantize_for_kernel,
    reference_gemm,
)
from repro.models import FULL_MODEL_SPECS, REFERENCE_FFN_SHAPES
from repro.runtime import OutOfMemoryError, default_backend_lineup


def correctness_check() -> None:
    print("== 1. Packed W3A16 GEMM correctness (Appendix D criterion: rel. error < 0.005) ==")
    rng = np.random.default_rng(0)
    for k, n in [(512, 1792), (1792, 512)]:
        weight = rng.normal(0, 0.05, size=(k, n))
        qw = quantize_for_kernel(weight, bits=3, group_size=64, symmetric=True)
        x = rng.normal(size=(16, k))
        from repro.kernels.gemm import _dequantize_kernel_weight

        y = packed_gemm_w3a16(x, qw)
        y_ref = reference_gemm(x, _dequantize_kernel_weight(qw))
        rel = np.linalg.norm(y - y_ref) / np.linalg.norm(y_ref)
        status = "PASS" if rel < 0.005 else "FAIL"
        print(f"  GEMM {k}x{n}, batch 16: relative error {rel:.2e}  [{status}]")


def gemm_throughput() -> None:
    print("\n== 2. Mixed-precision GEMM throughput (Fig. 9, modeled A100) ==")
    rows = []
    for model_name in ("deepseek-moe", "arctic-moe", "mixtral-8x7b", "falcon-180b"):
        shapes = REFERENCE_FFN_SHAPES[model_name]
        for batch in (1, 16, 32):
            row = {"model_mlp": model_name, "batch": batch}
            for backend, sim in default_backends().items():
                try:
                    row[backend] = round(sim.mlp_tflops(shapes, batch), 1)
                except UnsupportedBatchError:
                    row[backend] = "-"
            rows.append(row)
    print(format_rows(rows))


def end_to_end_latency() -> None:
    print("\n== 3. End-to-end decode-step latency, Mixtral-8x7B (Table 7) ==")
    spec = FULL_MODEL_SPECS["mixtral-8x7b"]
    rows = []
    for name, backend in default_backend_lineup().items():
        row = {"backend": name}
        for batch in (1, 16, 32):
            try:
                row[f"batch {batch} (ms)"] = round(backend.step_latency(spec, batch).total * 1e3, 2)
            except OutOfMemoryError:
                row[f"batch {batch} (ms)"] = "OOM"
            except UnsupportedBatchError:
                row[f"batch {batch} (ms)"] = "-"
        rows.append(row)
    print(format_rows(rows))


def kernel_ablation() -> None:
    print("\n== 4. MiLo kernel ablation (Fig. 10, batch 16, asymmetric) ==")
    rows = []
    for model_name in ("deepseek-moe", "arctic-moe", "mixtral-8x7b", "falcon-180b"):
        shapes = REFERENCE_FFN_SHAPES[model_name]
        base = MiLoKernelSim(symmetric=False).mlp_latency(shapes, 16)
        rows.append(
            {
                "model_mlp": model_name,
                "baseline_us": round(base * 1e6, 1),
                "-async load": round(MiLoKernelSim(symmetric=False, async_load=False).mlp_latency(shapes, 16) / base, 2),
                "-milo dequant": round(MiLoKernelSim(symmetric=False, milo_dequant=False).mlp_latency(shapes, 16) / base, 2),
                "-tile tuning": round(MiLoKernelSim(symmetric=False, tile_tuning=False).mlp_latency(shapes, 16) / base, 2),
            }
        )
    print(format_rows(rows, title="slowdown factor when removing each optimization"))


if __name__ == "__main__":
    correctness_check()
    gemm_throughput()
    end_to_end_latency()
    kernel_ablation()
